"""Concrete object dependency graphs and the materialization plan (S5.2).

SAND builds, for each video and for a window of ``k`` epochs, a fully
specified graph of the data objects every task will need: the encoded
video at the root, decoded frames below it, clips (selected frame
groups), chains of augmented clips, and finally the per-video *sample
leaves* that get collated into training batches.  Nodes are identified by
content keys — video id, frame index, the exact resolved augmentation
step prefix — so when coordinated randomization makes two tasks produce
the same object, they land on the *same node* and the work is shared.
That key-level merging is the mechanism behind Fig 16's operation
reductions.

Keys are *logical* identities and deliberately know nothing about
execution strategy: the augmentation plan compiler
(:mod:`repro.augment.fusion`) may collapse a whole per-frame op chain
into one fused pass at materialization time, but every intermediate
node keeps its own key, so cross-task merging, pruning, and cache
addressing are byte-for-byte unaffected by whether a chain ran fused
or step by step.

A :class:`MaterializationPlan` is the collection of per-video
:class:`VideoGraph` objects plus the batch-composition table mapping
``(task, epoch, iteration)`` to the sample leaves that batch collates.
The per-video granularity follows the paper: pruning (Algorithm 1)
iterates per video, and materialization threads are assigned per video
subtree (S5.4).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.augment.pipeline import ResolvedStep
from repro.codec.decoder import frames_to_decode
from repro.codec.incremental import frames_to_decode_with_cache
from repro.codec.model import VideoMetadata
from repro.core.config import TaskConfig
from repro.core.coordination import (
    EpochSchedule,
    FramePoolCoordinator,
    SharedWindowSampler,
    TaskRequirement,
    stable_rng,
)
from repro.sim.costs import CostModel


def _short_hash(*parts: object) -> str:
    text = "\x1f".join(str(p) for p in parts)
    return hashlib.sha1(text.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Use:
    """One consumption of a sample leaf by a training batch."""

    task: str
    epoch: int
    iteration: int
    slot: int  # position of the sample within the batch

    @property
    def batch_id(self) -> Tuple[str, int, int]:
        return (self.task, self.epoch, self.iteration)


@dataclass
class ObjectNode:
    """One data object in a per-video concrete graph."""

    key: str
    kind: str  # "video" | "frame" | "clip" | "aug"
    size_bytes: float
    parents: Tuple[str, ...]
    op_name: str  # operation on the incoming edge ("" for the root)
    op_cost_s: float  # single-core seconds to produce from parents
    clip_shape: Optional[Tuple[int, int, int, int]] = None
    frame_index: Optional[int] = None
    frame_indices: Optional[Tuple[int, ...]] = None  # sample leaves only
    # Executable op identity: (op name, config JSON, params JSON), as
    # produced by ResolvedStep.key — enough to reconstruct and apply.
    op_args: Optional[Tuple[str, str, str]] = None
    # Sample leaves: clip-scoped steps applied after collation.
    clip_ops: Tuple[Tuple[str, str, str], ...] = ()
    uses: List[Use] = field(default_factory=list)
    ref_count: int = 0  # times this node appears on some sample's path

    @property
    def is_leaf_sample(self) -> bool:
        return bool(self.uses)


class VideoGraph:
    """The concrete object graph rooted at one video."""

    def __init__(self, video_id: str, metadata: VideoMetadata, encoded_bytes: float):
        self.video_id = video_id
        self.metadata = metadata
        self.root_key = f"video:{video_id}"
        self.nodes: Dict[str, ObjectNode] = {
            self.root_key: ObjectNode(
                key=self.root_key,
                kind="video",
                size_bytes=encoded_bytes,
                parents=(),
                op_name="",
                op_cost_s=0.0,
            )
        }
        self._children: Dict[str, List[str]] = {self.root_key: []}
        # All frame indices any task wants from this video in the window.
        self.wanted_frames: set[int] = set()

    # -- construction -----------------------------------------------------------
    def add_node(self, node: ObjectNode) -> ObjectNode:
        """Insert or merge; merging bumps ref_count and unions uses."""
        existing = self.nodes.get(node.key)
        if existing is None:
            self.nodes[node.key] = node
            self._children.setdefault(node.key, [])
            for parent in node.parents:
                self._children.setdefault(parent, []).append(node.key)
            node.ref_count = 1
            return node
        existing.ref_count += 1
        return existing

    # -- queries -----------------------------------------------------------------
    def children(self, key: str) -> List[str]:
        return self._children.get(key, [])

    def leaves(self) -> List[ObjectNode]:
        return [n for n in self.nodes.values() if n.is_leaf_sample]

    def frames(self) -> List[ObjectNode]:
        return [n for n in self.nodes.values() if n.kind == "frame"]

    def subtree_keys(self, key: str) -> List[str]:
        """``key`` plus all descendants (preorder)."""
        out, stack, seen = [], [key], set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            stack.extend(self._children.get(current, []))
        return out

    def subtree_edge_cost(self, key: str) -> float:
        """Sum of op costs strictly below ``key`` (its recompute burden)."""
        return sum(
            self.nodes[k].op_cost_s for k in self.subtree_keys(key) if k != key
        )

    def path_cost(self, key: str, stop_at: Iterable[str]) -> float:
        """Op cost to produce ``key`` from the nearest ``stop_at`` ancestors."""
        stops = set(stop_at)
        cost = 0.0
        stack = [key]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen or current in stops:
                continue
            seen.add(current)
            node = self.nodes[current]
            cost += node.op_cost_s
            stack.extend(node.parents)
        return cost

    def decode_plan(self) -> List[int]:
        """Frames that must actually be decoded for the wanted set."""
        if not self.wanted_frames:
            return []
        return frames_to_decode(
            self.metadata.gop, self.wanted_frames, self.metadata.num_frames
        )

    def decode_plan_with_cache(self, cached_anchors: Iterable[int]) -> List[int]:
        """Decode plan given anchors already held by an anchor cache.

        The pure pricing counterpart to the engine's stateful decode
        reuse: ``len(decode_plan_with_cache(...))`` at the cost model's
        per-frame decode rate is the decode cost after reuse, without
        touching a decoder.  With no cached anchors this is exactly
        :meth:`decode_plan`.
        """
        if not self.wanted_frames:
            return []
        return frames_to_decode_with_cache(
            self.metadata.gop,
            self.wanted_frames,
            self.metadata.num_frames,
            cached_anchors,
        )


@dataclass
class BatchAssembly:
    """How one training batch is collated from per-video sample leaves."""

    task: str
    epoch: int
    iteration: int
    samples: List[Tuple[str, str]] = field(default_factory=list)  # (video_id, leaf key)


class MaterializationPlan:
    """The unified k-epoch plan across all tasks sharing a dataset."""

    def __init__(
        self,
        tasks: Sequence[TaskConfig],
        epoch_start: int,
        k_epochs: int,
    ):
        self.tasks: Dict[str, TaskConfig] = {t.tag: t for t in tasks}
        self.epoch_start = epoch_start
        self.k_epochs = k_epochs
        self.graphs: Dict[str, VideoGraph] = {}
        self.batches: Dict[Tuple[str, int, int], BatchAssembly] = {}
        self.iterations_per_epoch: Dict[str, int] = {}

    @property
    def epochs(self) -> List[int]:
        return list(range(self.epoch_start, self.epoch_start + self.k_epochs))

    def batch_order(self, task: str) -> List[BatchAssembly]:
        """Batches of one task in training order across the window."""
        out = [b for b in self.batches.values() if b.task == task]
        out.sort(key=lambda b: (b.epoch, b.iteration))
        return out

    def global_step(self, task: str, epoch: int, iteration: int) -> int:
        """Per-task step index within this plan window (deadline axis)."""
        per_epoch = self.iterations_per_epoch[task]
        return (epoch - self.epoch_start) * per_epoch + iteration

    def first_use_step(self, node: ObjectNode) -> Optional[int]:
        """Earliest step (min over tasks) at which a leaf is consumed."""
        if not node.uses:
            return None
        return min(self.global_step(u.task, u.epoch, u.iteration) for u in node.uses)

    # -- aggregate statistics (Fig 16 inputs) -------------------------------------
    def operation_counts(self) -> Dict[str, int]:
        """Unique operations executed under this plan, by op name.

        Each node is produced once per window, so merged nodes count
        once.  ``decode`` counts *frames actually decoded* including GOP
        lead-in, per the codec's dependency rule.
        """
        counts: Dict[str, int] = {}
        for graph in self.graphs.values():
            counts["decode"] = counts.get("decode", 0) + len(graph.decode_plan())
            for node in graph.nodes.values():
                if node.kind in ("aug", "sample"):
                    counts[node.op_name] = counts.get(node.op_name, 0) + 1
        return counts

    def reference_counts(self) -> Dict[str, int]:
        """Operations a plan-less pipeline would execute (no merging).

        Every reference to a node recomputes it, and every sample decodes
        its own dependency chain.
        """
        counts: Dict[str, int] = {}
        for graph in self.graphs.values():
            for node in graph.nodes.values():
                if node.kind in ("aug", "sample"):
                    counts[node.op_name] = counts.get(node.op_name, 0) + node.ref_count
                # Decode work without reuse: every sample reference decodes
                # its own frames, GOP amplification included.
                if node.kind == "sample" and node.frame_indices:
                    needed = len(
                        frames_to_decode(
                            graph.metadata.gop,
                            node.frame_indices,
                            graph.metadata.num_frames,
                        )
                    )
                    counts["decode"] = counts.get("decode", 0) + needed * node.ref_count
        return counts

    def frame_selection_counts(self) -> Dict[Tuple[str, int], int]:
        """(video, frame) -> times selected across the window (Fig 19)."""
        out: Dict[Tuple[str, int], int] = {}
        for graph in self.graphs.values():
            for node in graph.nodes.values():
                if node.kind == "frame":
                    out[(graph.video_id, node.frame_index)] = node.ref_count
        return out

    def total_cached_bytes(self) -> float:
        """Bytes if every current leaf sample were cached (pre-pruning)."""
        return sum(
            node.size_bytes for g in self.graphs.values() for node in g.leaves()
        )


class DatasetLike:
    """Structural interface plans need from a dataset (duck-typed)."""

    video_ids: List[str]

    def metadata(self, video_id: str) -> VideoMetadata:  # pragma: no cover
        raise NotImplementedError

    def encoded_size(self, video_id: str) -> int:  # pragma: no cover
        raise NotImplementedError


def build_plan_window(
    tasks: Sequence[TaskConfig],
    dataset,
    epoch_start: int,
    k_epochs: int,
    seed: int = 0,
    coordinated: bool = True,
    coordinate_temporal: Optional[bool] = None,
    coordinate_spatial: Optional[bool] = None,
    cost_model: Optional[CostModel] = None,
    max_iterations_per_epoch: Optional[int] = None,
) -> MaterializationPlan:
    """Build the unified concrete plan for ``k`` epochs across ``tasks``.

    ``dataset`` must expose ``video_ids``, ``metadata(id)`` and
    ``encoded_size(id)`` (both real and virtual datasets do).
    ``coordinated=False`` disables the shared pool/window (every task
    re-randomizes) — the ablation baseline for Figs 16/19/20.  The two
    mechanisms can also be toggled independently (component ablations):
    ``coordinate_temporal`` controls the shared frame pool and epoch
    schedule, ``coordinate_spatial`` the shared crop windows and
    branch/param agreement; both default to ``coordinated``.
    """
    if not tasks:
        raise ValueError("need at least one task")
    if k_epochs < 1:
        raise ValueError(f"k_epochs must be >= 1, got {k_epochs}")
    cm = cost_model or CostModel()
    plan = MaterializationPlan(tasks, epoch_start, k_epochs)

    temporal = coordinated if coordinate_temporal is None else coordinate_temporal
    spatial = coordinated if coordinate_spatial is None else coordinate_spatial
    requirements = [TaskRequirement.of(t) for t in tasks]
    pool = FramePoolCoordinator(requirements, seed=seed, coordinated=temporal)
    window_hw = SharedWindowSampler.required_window(tasks)
    windows = SharedWindowSampler(window_hw, seed=seed, coordinated=spatial)
    schedule = EpochSchedule(dataset.video_ids, seed=seed, coordinated=temporal)

    for config in tasks:
        per_epoch = schedule.iterations_per_epoch(config.sampling.videos_per_batch)
        if max_iterations_per_epoch is not None:
            per_epoch = min(per_epoch, max_iterations_per_epoch)
        if per_epoch < 1:
            raise ValueError(
                f"task {config.tag!r}: dataset of {len(dataset.video_ids)} videos "
                f"cannot fill a batch of {config.sampling.videos_per_batch}"
            )
        plan.iterations_per_epoch[config.tag] = per_epoch

    for config in tasks:
        task = config.tag
        vpb = config.sampling.videos_per_batch
        for epoch in plan.epochs:
            batches = schedule.batches(task, epoch, vpb)[
                : plan.iterations_per_epoch[task]
            ]
            for iteration, batch_videos in enumerate(batches):
                assembly = BatchAssembly(task, epoch, iteration)
                plan.batches[(task, epoch, iteration)] = assembly
                step = plan.global_step(task, epoch, iteration)
                for video_id in batch_videos:
                    _add_video_samples(
                        plan,
                        config,
                        dataset,
                        video_id,
                        epoch,
                        iteration,
                        step,
                        pool,
                        windows,
                        cm,
                        assembly,
                        seed,
                    )
    return plan


def _graph_for(plan: MaterializationPlan, dataset, video_id: str) -> VideoGraph:
    if video_id not in plan.graphs:
        plan.graphs[video_id] = VideoGraph(
            video_id, dataset.metadata(video_id), dataset.encoded_size(video_id)
        )
    return plan.graphs[video_id]


def _add_video_samples(
    plan: MaterializationPlan,
    config: TaskConfig,
    dataset,
    video_id: str,
    epoch: int,
    iteration: int,
    step: int,
    pool: FramePoolCoordinator,
    windows: SharedWindowSampler,
    cm: CostModel,
    assembly: BatchAssembly,
    seed: int,
) -> None:
    graph = _graph_for(plan, dataset, video_id)
    md = graph.metadata
    mp = md.megapixels
    frame_bytes = cm.compressed_frame_bytes(mp)
    task = config.tag

    for sample_idx in range(config.sampling.samples_per_video):
        indices = pool.select(
            task, video_id, epoch, sample_idx, md.num_frames, iteration=iteration
        )
        graph.wanted_frames.update(indices)

        # Frame nodes (merged by index across tasks/epochs in the window).
        frame_keys = []
        decode_share = cm.cpu_decode_s(1, mp)
        for index in indices:
            node = graph.add_node(
                ObjectNode(
                    key=f"frame:{video_id}:{index}",
                    kind="frame",
                    size_bytes=frame_bytes,
                    parents=(graph.root_key,),
                    op_name="decode",
                    op_cost_s=decode_share,
                    frame_index=index,
                )
            )
            frame_keys.append(node.key)

        # Resolve the augmentation pipeline with coordinated sampling.
        # Op params flow through the shared-window sampler; branch picks
        # (random/conditional) use an RNG keyed the same way so tasks
        # agree on branch choices exactly when coordination is on.
        clip_shape = (len(indices), md.height, md.width, 3)
        sampler = windows.param_sampler(
            video_id, epoch, sample_idx, task=task, iteration=iteration
        )
        if windows.coordinated:
            branch_rng = stable_rng(seed, "branch", video_id, epoch, sample_idx)
        else:
            branch_rng = stable_rng(
                seed, "branch", video_id, epoch, sample_idx, task, iteration
            )
        context = {"iteration": step, "epoch": epoch}
        variants = config.plan.resolve(
            context, branch_rng, clip_shape, param_sampler=sampler
        )

        frames_hash = _short_hash(video_id, tuple(indices))
        leaf_keys: List[str] = []
        for stream in config.plan.terminal_streams:
            for steps in variants[stream]:
                leaf_keys.append(
                    _add_sample(
                        graph, indices, frame_keys, steps, cm, md, frames_hash
                    )
                )

        for leaf_key in leaf_keys:
            leaf = graph.nodes[leaf_key]
            slot = len(assembly.samples)
            leaf.uses.append(Use(task, epoch, iteration, slot))
            assembly.samples.append((video_id, leaf_key))


def _add_sample(
    graph: VideoGraph,
    indices: Sequence[int],
    frame_keys: Sequence[str],
    steps: Sequence[ResolvedStep],
    cm: CostModel,
    md: VideoMetadata,
    frames_hash: str,
) -> str:
    """Add one sample: per-frame aug chains plus the collating leaf.

    Augmented objects are *per frame* (Table 1's
    ``/{task}/{video}/frame{index}/aug{depth}`` form): frame-scoped ops
    chain on each selected frame, keyed by (frame, resolved step
    prefix), so two tasks that select overlapping frames and agree on
    params — which coordination arranges — share those nodes even when
    their clip geometries differ.  Clip-scoped ops (temporal reversal,
    subsampling) act on the frame *group* and live on the sample leaf.
    """
    frame_steps = [s for s in steps if s.op.scope == "frame"]
    clip_steps = [s for s in steps if s.op.scope != "frame"]

    aug_leaf_keys: List[str] = []
    final_shape = (1, md.height, md.width, 3)
    for index, frame_key in zip(indices, frame_keys):
        parent_key = frame_key
        shape = (1, md.height, md.width, 3)
        prefix: List[Tuple[str, str, str]] = []
        for step in frame_steps:
            prefix.append(step.key)
            out_shape = step.op.output_shape(shape, step.params)
            in_mp = shape[1] * shape[2] / 1e6
            out_mp = out_shape[1] * out_shape[2] / 1e6
            key = f"aug:{graph.video_id}:{index}:{_short_hash(*prefix)}"
            node = graph.add_node(
                ObjectNode(
                    key=key,
                    kind="aug",
                    size_bytes=cm.compressed_frame_bytes(out_mp),
                    parents=(parent_key,),
                    op_name=step.op.name,
                    op_cost_s=cm.cpu_aug_s(1, in_mp, 1) * step.op.cost_weight,
                    clip_shape=out_shape,
                    op_args=step.key,
                )
            )
            parent_key = node.key
            shape = out_shape
        aug_leaf_keys.append(parent_key)
        final_shape = shape

    # The sample leaf groups the augmented frames and applies clip-scoped
    # ops; its key covers the full chain so identical samples merge.
    chain_hash = _short_hash(*(s.key for s in steps))
    sample_key = f"sample:{graph.video_id}:{frames_hash}:{chain_hash}"
    out_mp = final_shape[1] * final_shape[2] / 1e6
    clip_cost = sum(
        cm.cpu_aug_s(len(indices), out_mp, 1) * s.op.cost_weight for s in clip_steps
    )
    sample = graph.add_node(
        ObjectNode(
            key=sample_key,
            kind="sample",
            size_bytes=cm.compressed_frame_bytes(out_mp) * len(indices),
            parents=tuple(aug_leaf_keys),
            op_name="collate",
            op_cost_s=len(indices) * out_mp * cm.batch_assemble_ms_per_mp / 1e3
            + clip_cost,
            clip_shape=(len(indices),) + final_shape[1:],
            frame_indices=tuple(indices),
            clip_ops=tuple(s.key for s in clip_steps),
        )
    )
    return sample.key
