"""Fault tolerance and recovery (paper S5.5).

SAND persists all unpruned objects to the filesystem, so a crash loses
only in-memory state.  Recovery is the paper's three steps:

1. **Regenerate the concrete dependency tree from configuration files** —
   plan construction is deterministic given (configs, dataset, seed,
   window), so the rebuilt plan is bit-identical to the lost one; the
   checkpoint manifest records those inputs plus the pruning frontier.
2. **Scan disk for previously persisted objects** — the directory-backed
   object store rebuilds its index from files, quarantining torn writes.
3. **Determine optimal recovery points** — diff the frontier against the
   scanned store: only objects that are planned-but-missing need
   recomputation.  Survivors are checksum-validated first, so a blob
   that rotted while the service was down counts as missing, not as
   recovered.

A manifest that is itself damaged (truncated by the crash, version
skew, missing fields) raises :class:`RecoveryError` naming the manifest
path — never a raw ``JSONDecodeError``/``KeyError``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Set

from repro.core.concrete_graph import MaterializationPlan
from repro.core.pruning import PruningOutcome
from repro.storage.objectstore import ObjectStore

MANIFEST_NAME = "sand-checkpoint.json"
MANIFEST_VERSION = 1

_REQUIRED_MANIFEST_KEYS = ("seed", "window_start", "k_epochs", "frontier")


class RecoveryError(ValueError):
    """The checkpoint manifest cannot be used for recovery."""

    def __init__(self, path, reason: str):
        super().__init__(f"cannot recover from checkpoint {str(path)!r}: {reason}")
        self.path = Path(path)
        self.reason = reason


@dataclass
class RecoveryReport:
    """Result of step 3: what survives and what must be recomputed."""

    window_start: int
    k_epochs: int
    planned_objects: int
    recovered_objects: int
    missing: Dict[str, List[str]] = field(default_factory=dict)  # video -> keys
    stale_keys: List[str] = field(default_factory=list)  # on disk, not planned
    corrupt_keys: List[str] = field(default_factory=list)  # failed checksum
    # Quarantined during the rescan itself: torn per-object writes and
    # torn pack-segment tail records (keys, or "<pack:seg@off>" markers
    # when the tear destroyed the record's identity).
    scan_quarantined: List[str] = field(default_factory=list)
    # Tiered stores only: survivors whose replica count was restored to
    # target by the post-diff repair pass (0 for single-tier stores).
    replicas_repaired: int = 0

    @property
    def missing_count(self) -> int:
        return sum(len(keys) for keys in self.missing.values())

    @property
    def recovered_fraction(self) -> float:
        if self.planned_objects == 0:
            return 1.0
        return self.recovered_objects / self.planned_objects


def write_checkpoint(
    path: Path,
    plan: MaterializationPlan,
    pruning: PruningOutcome,
    seed: int,
) -> Path:
    """Persist the manifest ("checkpointed every k epochs", S5.5)."""
    manifest = {
        "version": MANIFEST_VERSION,
        "seed": seed,
        "window_start": plan.epoch_start,
        "k_epochs": plan.k_epochs,
        "tasks": sorted(plan.tasks),
        "frontier": {
            vid: sorted(pruning.frontier_of(vid)) for vid in plan.graphs
        },
    }
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(manifest, indent=1))
    tmp.replace(path)
    return path


def read_checkpoint(path: Path) -> dict:
    """Load and validate the manifest; :class:`RecoveryError` on damage."""
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    try:
        text = path.read_text()
    except OSError as exc:
        raise RecoveryError(path, f"manifest unreadable: {exc}") from exc
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RecoveryError(
            path, f"manifest truncated or malformed: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise RecoveryError(path, "manifest is not a JSON object")
    if manifest.get("version") != MANIFEST_VERSION:
        raise RecoveryError(
            path,
            f"unsupported checkpoint version {manifest.get('version')!r} "
            f"(expected {MANIFEST_VERSION})",
        )
    absent = [key for key in _REQUIRED_MANIFEST_KEYS if key not in manifest]
    if absent:
        raise RecoveryError(path, f"manifest missing required keys: {absent}")
    if not isinstance(manifest["frontier"], dict):
        raise RecoveryError(path, "manifest frontier must be a JSON object")
    return manifest


def recover(
    manifest: dict,
    store: ObjectStore,
) -> RecoveryReport:
    """Steps 2-3: rescan the store and diff it against the manifest.

    Every planned object found on disk is checksum-validated before it
    counts as recovered; a corrupt survivor is quarantined by the store
    and reported both in ``missing`` (it must be recomputed) and in
    ``corrupt_keys`` (so operators can see the rot).  Damage caught
    structurally by the rescan itself — torn per-object writes, torn
    pack-segment tail records — lands in ``scan_quarantined``; any such
    key that was planned also shows up in ``missing``.
    """
    already_quarantined = len(getattr(store, "quarantined", []))
    store.scan()
    scan_quarantined = list(
        getattr(store, "quarantined", [])[already_quarantined:]
    )
    on_disk: Set[str] = set(store.keys())
    verify = getattr(store, "verify", None)
    planned = 0
    recovered = 0
    missing: Dict[str, List[str]] = {}
    corrupt: List[str] = []
    planned_keys: Set[str] = set()
    for video_id, keys in manifest["frontier"].items():
        lost = []
        for key in keys:
            planned += 1
            planned_keys.add(key)
            if key not in on_disk:
                lost.append(key)
            elif verify is not None and not verify(key):
                corrupt.append(key)
                lost.append(key)
            else:
                recovered += 1
        if lost:
            missing[video_id] = lost
    # Tiered stores: survivors may have lost a replica in the crash
    # (e.g. the write-behind replica never landed).  Repairing here
    # restores k=2 before training resumes, so a second failure during
    # the recovered epoch still does not force recompute.
    repairs = 0
    repairer = getattr(store, "repair_scan", None)
    if repairer is not None:
        repairs = int(repairer().get("repaired", 0))
    return RecoveryReport(
        window_start=manifest["window_start"],
        k_epochs=manifest["k_epochs"],
        planned_objects=planned,
        recovered_objects=recovered,
        missing=missing,
        stale_keys=sorted(on_disk - planned_keys),
        corrupt_keys=sorted(corrupt),
        scan_quarantined=scan_quarantined,
        replicas_repaired=repairs,
    )
