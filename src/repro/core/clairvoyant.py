"""Exact future-access oracles for Belady-style (clairvoyant) eviction.

Belady's MIN rule — evict the entry whose next use is farthest in the
future — is usually presented as an unimplementable ideal, approximated
by LRU or learned predictors.  SAND is in the unusual position of having
the ideal *available*: tasks register their full schedules up front, so
the plan's batch table IS the future access sequence.  This module turns
that table into an :class:`~repro.codec.incremental.AnchorOracle` the
:class:`~repro.codec.incremental.AnchorCache` consults at eviction time.

Two constructors:

* :func:`oracle_from_plan` — the engine path.  Walks every sample leaf's
  frame indices, expands them to the anchors their decode depends on
  (anchor chain, plus the following anchor for B frames), and records
  the global step of every use.
* :func:`oracle_from_accesses` — the benchmark/ablation path.  Takes an
  explicit per-step access sequence and does the same expansion, so
  oracle-vs-LRU comparisons run the *identical* request stream.

The oracle is conservative, never wrong: it may list a use that
near-duplicate collapse later skips (wasting a little budget), but it
never misses a real use, so clairvoyant eviction cannot change decoded
bytes — only how often the decoder resumes from a cached anchor.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.codec.model import FrameType, GopStructure, VideoMetadata
from repro.codec.signals import next_use_after


class NextUseOracle:
    """Maps ``(video_id, anchor_index)`` to its sorted future use steps."""

    def __init__(self, uses: Dict[Tuple[str, int], List[int]]):
        self._uses: Dict[Tuple[str, int], List[int]] = {
            key: sorted(set(steps)) for key, steps in uses.items()
        }

    def next_use(self, video_id: str, index: int, now: int) -> Optional[int]:
        """Next step strictly after ``now`` needing this anchor, or None."""
        steps = self._uses.get((video_id, index))
        if not steps:
            return None
        return next_use_after(steps, now)

    def __len__(self) -> int:
        return len(self._uses)

    def tracked_anchors(self, video_id: str) -> List[int]:
        return sorted(i for (vid, i) in self._uses if vid == video_id)


def _anchors_needed(
    gop: GopStructure, index: int, num_frames: int
) -> List[int]:
    """Anchor frames a decode of ``index`` depends on (incl. itself)."""
    needed = list(gop.anchor_chain(index))
    if gop.frame_type(index, num_frames) is FrameType.B:
        next_anchor = gop.next_anchor(index, num_frames)
        if next_anchor is not None:
            needed.append(next_anchor)
    return needed


def oracle_from_plan(plan: object) -> NextUseOracle:
    """Build the exact anchor-use oracle from a materialization plan.

    For every sample leaf, every frame it reads is expanded to the
    anchors that decode depends on, and each of the leaf's uses
    contributes its global step.  ``plan`` is duck-typed (``graphs`` +
    ``global_step``) to avoid a circular import with concrete_graph.
    """
    uses: Dict[Tuple[str, int], List[int]] = {}
    graphs = getattr(plan, "graphs")
    global_step = getattr(plan, "global_step")
    for video_id, graph in graphs.items():
        metadata = graph.metadata
        gop = metadata.gop
        for leaf in graph.leaves():
            indices = leaf.frame_indices or ()
            anchors: set[int] = set()
            for index in indices:
                anchors.update(_anchors_needed(gop, index, metadata.num_frames))
            for use in leaf.uses:
                step = global_step(use.task, use.epoch, use.iteration)
                for anchor in anchors:
                    uses.setdefault((video_id, anchor), []).append(step)
    return NextUseOracle(uses)


def oracle_from_accesses(
    metadata: VideoMetadata,
    accesses: Sequence[Iterable[int]],
    video_id: Optional[str] = None,
) -> NextUseOracle:
    """Oracle over an explicit access sequence (one frame-set per step).

    Step ``t`` is position ``t`` in ``accesses``; each access's frames
    are expanded to their anchor dependencies exactly as the engine path
    does.  Used by the oracle-vs-LRU ablation so both policies face the
    same stream.
    """
    vid = video_id if video_id is not None else metadata.video_id
    gop = metadata.gop
    uses: Dict[Tuple[str, int], List[int]] = {}
    for step, frames in enumerate(accesses):
        anchors: set[int] = set()
        for index in frames:
            anchors.update(_anchors_needed(gop, index, metadata.num_frames))
        for anchor in anchors:
            uses.setdefault((vid, anchor), []).append(step)
    return NextUseOracle(uses)
