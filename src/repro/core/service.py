"""The SAND service: planning, engine, cache, and the view filesystem.

This is the composition root of the system.  Given task configs and one
or more datasets, the service:

1. builds abstract view graphs and groups tasks by shared dataset root
   (S5.2 — only tasks on the same root can merge objects),
2. builds, per group, the k-epoch concrete plan window with coordinated
   randomization (S5.2),
3. prunes it to the storage budget (S5.3, Algorithm 1),
4. runs a preprocessing engine over it (S5.4), rolling each group to its
   next window before the current one expires, and
5. mounts itself as a filesystem provider so applications reach every
   view through POSIX calls (S5.1, Fig 8, Tables 1-2).

Views served:

* ``/{task}/{epoch}/{iteration}/view`` — training batch (array blob;
  xattrs: shape, dtype, timestamps, labels, videos),
* ``/{task}/{video}.mp4`` — the encoded source video,
* ``/{task}/{video}/frame{i}`` — a decoded frame,
* ``/{task}/{video}/frame{i}/aug{d}`` — an augmented frame at depth d,
* ``/{task}/ctrl`` — the task-lifecycle control file: opening it marks
  the task started, closing it marks the task finished (the paper's
  remaining "4 lines ... communicate the start and end of tasks").

``dataset`` may be a single dataset object (used by every task) or a
mapping from ``video_dataset_path`` to dataset, one entry per distinct
root the task configs name.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.locks import make_rlock
from repro.augment.registry import OpRegistry
from repro.codec.incremental import AnchorCache
from repro.core.abstract_graph import AbstractViewGraph, group_tasks_by_dataset
from repro.core.cache import CacheManager
from repro.core.concrete_graph import MaterializationPlan, build_plan_window
from repro.core.config import TaskConfig
from repro.core.dataplane import AsyncBatchServer, BatchLease, BufferPool
from repro.core.engine import PreprocessingEngine
from repro.core.pruning import PruningOutcome, prune_plan
from repro.core.recovery import (
    RecoveryReport,
    read_checkpoint,
    recover,
    write_checkpoint,
)
from repro.core.scheduling import SchedulingMode
from repro.core.views import (
    AugFrameView,
    BatchView,
    FrameView,
    VideoView,
    parse_view_path,
    try_parse_view_path,
)
from repro.storage.blobs import encode_array
from repro.storage.local import LocalStore
from repro.storage.tiering import TieredStore
from repro.vfs.errors import (
    FileNotFoundVfsError,
    IsADirectoryVfsError,
    NoAttributeError,
    NotADirectoryVfsError,
)
from repro.vfs.provider import FileHandle, FileSystemProvider, NodeInfo

CTRL_NAME = "ctrl"


class _Group:
    """One dataset root: its tasks and window state."""

    def __init__(self, path: str, tasks: List[TaskConfig], dataset):
        self.path = path
        self.tasks = tasks
        self.dataset = dataset
        self.window_start: Optional[int] = None
        self.plan: Optional[MaterializationPlan] = None
        self.pruning: Optional[PruningOutcome] = None
        self.engine: Optional[PreprocessingEngine] = None


class SandService(FileSystemProvider):
    """The user-facing SAND instance."""

    def __init__(
        self,
        tasks: Sequence[TaskConfig],
        dataset,
        storage_budget_bytes: int = 64 * 1024 * 1024,
        k_epochs: int = 2,
        num_workers: int = 2,
        seed: int = 0,
        coordinated: bool = True,
        prune: bool = True,
        scheduling_mode: SchedulingMode = SchedulingMode.DEADLINE,
        registry: Optional[OpRegistry] = None,
        store: Optional[LocalStore] = None,
        remote_store=None,
        replication: int = 2,
        memory_budget_bytes: int = 512 * 1024 * 1024,
        fault_schedule=None,
        retry_policy=None,
        prefetch_depth: int = 2,
        reuse_threshold: float = 0.0,
        clairvoyant_cache: bool = True,
    ):
        if not tasks:
            raise ValueError("need at least one task config")
        self.tasks: Dict[str, TaskConfig] = {t.tag: t for t in tasks}
        self.k_epochs = k_epochs
        self.seed = seed
        self.coordinated = coordinated
        self.prune = prune
        self.scheduling_mode = scheduling_mode
        self.registry = registry
        self.num_workers = num_workers
        self.memory_budget_bytes = memory_budget_bytes
        # Fault-injection harness hooks (repro.faults): the schedule
        # drives injected failures inside every engine this service
        # builds; the retry policy bounds how the engines fight back.
        self.fault_schedule = fault_schedule
        self.retry_policy = retry_policy
        # Demand-path pipelining: each engine speculatively assembles the
        # next K batches per task on background threads (0 disables).
        self.prefetch_depth = prefetch_depth
        # Codec-signal reuse: near-duplicate collapse threshold (0 = off,
        # byte-identical) and Belady-oracle anchor eviction (on by
        # default; output-invariant either way).
        self.reuse_threshold = reuse_threshold
        self.clairvoyant_cache = clairvoyant_cache

        self.abstract_graphs: Dict[str, AbstractViewGraph] = {
            t.tag: AbstractViewGraph.from_config(t) for t in tasks
        }
        self.dataset_groups = group_tasks_by_dataset(
            list(self.abstract_graphs.values())
        )

        self._groups: Dict[str, _Group] = {}
        self._task_group: Dict[str, str] = {}
        for path, graphs in self.dataset_groups:
            group_tasks = [self.tasks[g.task] for g in graphs]
            group_dataset = self._resolve_dataset(dataset, path)
            self._groups[path] = _Group(path, group_tasks, group_dataset)
            for config in group_tasks:
                self._task_group[config.tag] = path

        # Note: `store or ...` would be wrong — an empty ObjectStore has
        # len() == 0 and is falsy.
        base_store = store if store is not None else LocalStore(storage_budget_bytes)
        if remote_store is not None:
            # Tiered deployment: the remote tier replicates hot objects
            # (k=2 by default) and absorbs demoted warm/cold spillover,
            # so byte pressure demotes instead of deleting and blob loss
            # recovers by copy instead of recompute.
            self.store = TieredStore(
                base_store,
                remote_store,
                replication=replication,
                fault_schedule=fault_schedule,
            )
        else:
            self.store = base_store
        self.cache = CacheManager(self.store)
        # One anchor cache for the service's lifetime: rolling to a new
        # plan window rebuilds the engine, but decoded anchor state keeps
        # paying off across windows (videos recur every epoch).
        self.anchor_cache = AnchorCache()

        self._window_lock = make_rlock("service.window")
        self._active_tasks: Set[str] = set()
        # One delivery pool for the service's lifetime: window rolls
        # rebuild engines, but delivery buffers (shape-stable across
        # windows) keep recycling, and the async server's leases stay
        # valid across a roll.
        self.delivery_pool = BufferPool(name="service-delivery")
        # Async servers created via serve_async, so status() can fold
        # their wire counters into the one operator report.
        self._servers: List[AsyncBatchServer] = []

    @staticmethod
    def _resolve_dataset(dataset, path: str):
        if isinstance(dataset, Mapping):
            if path not in dataset:
                raise KeyError(
                    f"no dataset provided for video_dataset_path {path!r}; "
                    f"known: {sorted(dataset)}"
                )
            return dataset[path]
        return dataset

    # -- group plumbing -------------------------------------------------------
    def _group(self, task: str) -> _Group:
        if task not in self._task_group:
            raise KeyError(f"unknown task {task!r}")
        return self._groups[self._task_group[task]]

    def _single_group(self) -> _Group:
        (group,) = self._groups.values()
        return group

    @property
    def dataset(self):
        """The dataset (single-group services; ambiguous otherwise)."""
        return self._single_group().dataset

    # Backward-compatible single-group accessors (most deployments have
    # every task on one dataset, like the paper's scenarios).
    @property
    def plan(self) -> Optional[MaterializationPlan]:
        return self._single_group().plan

    @property
    def pruning(self) -> Optional[PruningOutcome]:
        return self._single_group().pruning

    @property
    def engine(self) -> Optional[PreprocessingEngine]:
        return self._single_group().engine

    # -- window management ----------------------------------------------------
    def ensure_window(self, epoch: int, task: Optional[str] = None) -> PreprocessingEngine:
        """Plan/prune/start the k-epoch window containing ``epoch``.

        With multiple dataset groups, ``task`` selects which group;
        single-group services may omit it.
        """
        group = self._group(task) if task is not None else self._single_group()
        with self._window_lock:
            if (
                group.window_start is not None
                and group.window_start <= epoch < group.window_start + self.k_epochs
            ):
                assert group.engine is not None
                group.engine.start()  # no-op if already running
                return group.engine
            start = (epoch // self.k_epochs) * self.k_epochs
            return self._build_window(group, start)

    def _build_window(self, group: _Group, epoch_start: int) -> PreprocessingEngine:
        if group.engine is not None:
            group.engine.stop()
        plan = build_plan_window(
            group.tasks,
            group.dataset,
            epoch_start,
            self.k_epochs,
            seed=self.seed,
            coordinated=self.coordinated,
        )
        pruning = prune_plan(plan, self.store.capacity_bytes) if self.prune else None
        self.cache.register_plan(plan, pruning)
        engine = PreprocessingEngine(
            plan,
            group.dataset,
            pruning=pruning,
            cache=self.cache,
            num_workers=self.num_workers,
            memory_budget_bytes=self.memory_budget_bytes,
            scheduling_mode=self.scheduling_mode,
            registry=self.registry,
            anchor_cache=self.anchor_cache,
            fault_schedule=self.fault_schedule,
            retry_policy=self.retry_policy,
            seed=self.seed,
            prefetch_depth=self.prefetch_depth,
            reuse_threshold=self.reuse_threshold,
            clairvoyant_cache=self.clairvoyant_cache,
            delivery_pool=self.delivery_pool,
        )
        engine.start()
        group.window_start = epoch_start
        group.plan = plan
        group.pruning = pruning
        group.engine = engine
        return engine

    def shutdown(self) -> None:
        with self._window_lock:
            for group in self._groups.values():
                if group.engine is not None:
                    group.engine.stop()
            # Lease-leak check over the shared delivery pool: with every
            # engine stopped and no speculative batch still queued,
            # nothing should hold a lease (served batches were detached
            # or released).  note_leaks no-ops when sanitizers are off.
            if all(
                group.engine is None or group.engine.prefetch_queue_depth() == 0
                for group in self._groups.values()
            ):
                self.delivery_pool.note_leaks()
            # Flush write-behind storage and release pack mappings.
            self.cache.close()

    # -- operations ------------------------------------------------------------
    def status(self) -> Dict:
        """Operator-facing snapshot: windows, storage health, failures.

        The storage block surfaces per-tier bytes, pack segment
        live/dead ratios, replication counters, and under-replicated
        key counts when the store is tiered (plain stores report their
        single-tier health).  JSON-serializable throughout.
        """
        with self._window_lock:
            health = getattr(self.store, "health", None)
            storage: Dict = (
                health()
                if health is not None
                else {
                    "capacity_bytes": self.store.capacity_bytes,
                    "used_bytes": self.store.used_bytes,
                    "objects": len(self.store),
                }
            )
            engines: Dict[str, Dict] = {}
            for path, group in self._groups.items():
                if group.engine is None:
                    continue
                stats = group.engine.stats
                engines[path] = {
                    "window_start": group.window_start,
                    "batches_served": stats.batches_served,
                    "demand_materializations": stats.demand_materializations,
                    "pre_materializations": stats.pre_materializations,
                    "job_retries": stats.job_retries,
                    "dead_letters": len(stats.dead_letters),
                    "fallback_rematerializations": stats.fallback_rematerializations,
                    "storage_failures": dict(stats.storage),
                    "dataplane": dict(stats.dataplane),
                }
            # One endpoint for operators and the load generator: the
            # delivery-path block (pool health, per-engine wire ledger,
            # attached async servers) rides along with window/storage
            # state instead of needing a second scrape.
            dataplane = self.dataplane_report()
            dataplane["servers"] = [server.report() for server in self._servers]
            return {
                "tasks": sorted(self.tasks),
                "active_tasks": sorted(self._active_tasks),
                "cache": {
                    "evictions": self.cache.evictions,
                    "demotions": self.cache.demotions,
                },
                "storage": storage,
                "engines": engines,
                "dataplane": dataplane,
            }

    def storage_maintenance(self) -> Dict:
        """One background maintenance pass over the store.

        Re-replicates under-replicated keys (tiered stores) and
        compacts tombstoned pack segments; safe to call any time the
        caller is not concurrently mutating the store from another
        thread, and a no-op for stores without those capabilities.
        """
        with self._window_lock:
            report: Dict = {}
            repairer = getattr(self.store, "repair_scan", None)
            if repairer is not None:
                report["repair"] = repairer()
            compactor = getattr(self.store, "compact_packs", None)
            if compactor is not None:
                report["compaction"] = compactor()
            return report

    # -- fault tolerance (S5.5) -------------------------------------------------
    def checkpoint(self, directory) -> Path:
        """Persist the current window's manifest for crash recovery."""
        with self._window_lock:
            group = self._single_group()
            if group.plan is None or group.pruning is None:
                raise RuntimeError("no active window to checkpoint")
            return write_checkpoint(Path(directory), group.plan, group.pruning, self.seed)

    def recover_from(self, directory) -> RecoveryReport:
        """Three-step restart: replan, rescan the store, diff (S5.5).

        The window named in the manifest is rebuilt (plan construction is
        deterministic), the persistent store is rescanned, and the
        returned report lists exactly the objects that must be
        rematerialized — the engine then does so lazily on demand or
        eagerly via its pre-materialization workers.
        """
        manifest = read_checkpoint(Path(directory))
        report = recover(manifest, self.store)
        self.ensure_window(manifest["window_start"])
        return report

    # -- typed access (used by the provider and directly by trainers) ---------------
    def batch(self, task: str, epoch: int, iteration: int) -> Tuple[np.ndarray, Dict]:
        engine = self.ensure_window(epoch, task=task)
        return engine.get_batch(task, epoch, iteration)

    # BatchSource protocol alias (trainers consume any batch source).
    get_batch = batch

    def get_batch_lease(
        self, task: str, epoch: int, iteration: int
    ) -> Tuple[BatchLease, Dict]:
        """``batch`` lending the pooled delivery buffer (zero-copy path).

        Used by :class:`~repro.core.dataplane.LocalClient` and
        :class:`~repro.core.dataplane.AsyncBatchServer`; the caller
        releases the lease once the batch is consumed.
        """
        engine = self.ensure_window(epoch, task=task)
        return engine.get_batch_lease(task, epoch, iteration)

    def note_send(self, nbytes: int, task: Optional[str] = None) -> None:
        """Charge one socket delivery to the owning engine's ledger."""
        group = (
            self._group(task)
            if task is not None and task in self._task_group
            else self._single_group()
        )
        if group.engine is not None:
            group.engine.note_send(nbytes, task=task)

    def dataplane_report(self) -> Dict:
        """Per-group delivery-path stats plus the shared pool's health."""
        with self._window_lock:
            report: Dict = {"pool": self.delivery_pool.report(), "engines": {}}
            for path, group in self._groups.items():
                if group.engine is not None:
                    report["engines"][path] = group.engine.dataplane_report()
            return report

    def serve_async(
        self,
        unix_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs,
    ) -> AsyncBatchServer:
        """An :class:`AsyncBatchServer` bound to this service.

        The caller owns the server lifecycle: ``await server.start()``
        on a running loop, or ``server.start_background()`` /
        ``server.shutdown()`` from synchronous code (``python -m repro
        --serve`` does the latter).
        """
        server = AsyncBatchServer(
            self, unix_path=unix_path, host=host, port=port, **kwargs
        )
        with self._window_lock:
            self._servers.append(server)
        return server

    def iterations_per_epoch(self, task: str, epoch: int = 0) -> int:
        """Iterations of ``epoch`` (streaming corpora can grow per window)."""
        engine = self.ensure_window(epoch, task=task)
        return engine.plan.iterations_per_epoch[task]

    def frame_array(self, task: str, video: str, index: int) -> np.ndarray:
        group = self._group(task)
        engine = self.ensure_window(group.window_start or 0, task=task)
        graph = engine.plan.graphs.get(video)
        key = f"frame:{video}:{index}"
        if graph is None or key not in graph.nodes:
            raise KeyError(f"frame {index} of {video!r} is not in the current plan")
        return engine._materializer(video).get(key)

    def aug_frame_array(self, task: str, video: str, index: int, depth: int) -> np.ndarray:
        """Best-effort: the depth-``d`` augmented view of a planned frame."""
        group = self._group(task)
        engine = self.ensure_window(group.window_start or 0, task=task)
        graph = engine.plan.graphs.get(video)
        if graph is None:
            raise KeyError(f"video {video!r} is not in the current plan")
        # Chain depth of an aug node = number of aug ancestors + itself.
        candidates = []
        for node in graph.nodes.values():
            if node.kind != "aug":
                continue
            if not node.key.startswith(f"aug:{video}:{index}:"):
                continue
            d, cursor = 0, node
            while cursor.kind == "aug":
                d += 1
                cursor = graph.nodes[cursor.parents[0]]
            if d == depth:
                candidates.append(node.key)
        if not candidates:
            raise KeyError(
                f"no depth-{depth} augmented view of frame {index} of {video!r}"
            )
        return engine._materializer(video).get(sorted(candidates)[0])

    # -- task lifecycle --------------------------------------------------------------
    def start_task(self, task: str) -> None:
        if task not in self.tasks:
            raise KeyError(f"unknown task {task!r}")
        self._active_tasks.add(task)
        self.ensure_window(0, task=task)

    def end_task(self, task: str) -> None:
        self._active_tasks.discard(task)
        if not self._active_tasks:
            for group in self._groups.values():
                if group.engine is not None:
                    group.engine.stop()

    @property
    def active_tasks(self) -> Set[str]:
        return set(self._active_tasks)

    # -- FileSystemProvider ------------------------------------------------------
    def _parts(self, path: str) -> List[str]:
        return [p for p in path.split("/") if p]

    def lookup(self, path: str) -> NodeInfo:
        parts = self._parts(path)
        if not parts:
            return NodeInfo(path, is_dir=True)
        if parts[0] not in self.tasks:
            raise FileNotFoundVfsError(path)
        if len(parts) == 1:
            return NodeInfo(path, is_dir=True)
        if parts[-1] == CTRL_NAME and len(parts) == 2:
            return NodeInfo(path, is_dir=False, size=0)
        view = try_parse_view_path("/" + "/".join(parts))
        if view is not None:
            return NodeInfo(path, is_dir=False, size=0)
        # Intermediate directory levels of the Table-1 namespace.
        return NodeInfo(path, is_dir=True)

    def open(self, path: str) -> FileHandle:
        parts = self._parts(path)
        if len(parts) == 2 and parts[1] == CTRL_NAME:
            if parts[0] not in self.tasks:
                raise FileNotFoundVfsError(path)
            self.start_task(parts[0])
            return _CtrlHandle(self, parts[0], path)
        try:
            view = parse_view_path(path)
        except ValueError as exc:
            raise FileNotFoundVfsError(path, str(exc)) from exc
        if view.task not in self.tasks:
            raise FileNotFoundVfsError(path, f"unknown task {view.task!r}")
        dataset = self._group(view.task).dataset
        try:
            if isinstance(view, BatchView):
                batch, metadata = self.batch(view.task, view.epoch, view.iteration)
                # The blob encode below duplicates the batch for the
                # POSIX read path — a real trainer-boundary copy, charged
                # so the ledger stays end-to-end truthful.
                engine = self._group(view.task).engine
                if engine is not None:
                    engine.note_delivery_copy(batch.nbytes)
                handle = FileHandle(encode_array(batch), path)
                handle.metadata = metadata  # type: ignore[attr-defined]
                return handle
            if isinstance(view, VideoView):
                if view.video not in dataset.video_ids:
                    raise FileNotFoundVfsError(path)
                return FileHandle(dataset.get_bytes(view.video), path)
            if isinstance(view, FrameView):
                return FileHandle(
                    encode_array(self.frame_array(view.task, view.video, view.index)),
                    path,
                )
            if isinstance(view, AugFrameView):
                return FileHandle(
                    encode_array(
                        self.aug_frame_array(
                            view.task, view.video, view.index, view.depth
                        )
                    ),
                    path,
                )
        except KeyError as exc:
            raise FileNotFoundVfsError(path, str(exc)) from exc
        raise IsADirectoryVfsError(path)

    def getxattr(self, path: str, name: str) -> bytes:
        view = try_parse_view_path(path)
        if view is None or view.task not in self.tasks:
            raise FileNotFoundVfsError(path)
        dataset = self._group(view.task).dataset
        if isinstance(view, BatchView):
            batch, metadata = self.batch(view.task, view.epoch, view.iteration)
            if name == "shape":
                return json.dumps(list(batch.shape)).encode()
            if name == "dtype":
                return str(batch.dtype).encode()
            if name in metadata:
                return json.dumps(metadata[name]).encode()
            raise NoAttributeError(path, f"no xattr {name!r}")
        if isinstance(view, (FrameView, AugFrameView)):
            md = dataset.metadata(view.video)
            if name == "timestamp":
                return json.dumps(round(view.index / md.fps, 6)).encode()
            if name == "video":
                return view.video.encode()
            raise NoAttributeError(path, f"no xattr {name!r}")
        if isinstance(view, VideoView):
            md = dataset.metadata(view.video)
            if name == "metadata":
                return json.dumps(
                    {
                        "width": md.width,
                        "height": md.height,
                        "num_frames": md.num_frames,
                        "fps": md.fps,
                        "gop_size": md.gop_size,
                    }
                ).encode()
            raise NoAttributeError(path, f"no xattr {name!r}")
        raise NoAttributeError(path, f"no xattr {name!r}")

    def listdir(self, path: str) -> List[str]:
        parts = self._parts(path)
        if not parts:
            return sorted(self.tasks)
        task = parts[0]
        if task not in self.tasks:
            raise FileNotFoundVfsError(path)
        if try_parse_view_path(path) is not None:
            raise NotADirectoryVfsError(path)
        group = self._group(task)
        engine = self.ensure_window(group.window_start or 0, task=task)
        plan = engine.plan
        if len(parts) == 1:
            entries = {CTRL_NAME}
            entries.update(f"{vid}.mp4" for vid in group.dataset.video_ids)
            entries.update(str(e) for e in plan.epochs)
            return sorted(entries)
        if len(parts) == 2 and parts[1].isdigit():
            epoch = int(parts[1])
            iters = [
                str(b.iteration)
                for b in plan.batches.values()
                if b.task == task and b.epoch == epoch
            ]
            if not iters:
                raise FileNotFoundVfsError(path)
            return sorted(iters, key=int)
        if len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit():
            return ["view"]
        raise FileNotFoundVfsError(path)

    def release(self, handle: FileHandle) -> None:
        handle.close()


class _CtrlHandle(FileHandle):
    """The task control file: close() signals task completion."""

    def __init__(self, service: SandService, task: str, path: str):
        super().__init__(b"", path)
        self._service = service
        self._task = task

    def close(self) -> None:
        if not self.closed:
            self._service.end_task(self._task)
        super().close()
