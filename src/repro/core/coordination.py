"""Coordinated randomization (paper S5.2).

The tension SAND resolves: independent per-task sampling almost never
produces mergeable nodes in the concrete graph, while naively forcing
tasks to share frames breaks each task's randomness requirements.  The
paper's two mechanisms, implemented here:

**Shared frame pool** (temporal randomness).  Per (video, epoch):
(1) collect every task's frame count and stride, (2) build a unified
sampling grid at the GCD of all strides, (3) randomly place a pool window
spanning the maximum clip length.  Each task then draws its clip from the
pool — start offset random on the grid — so frames are still randomly
selected but all tasks draw from the same decoded set.

**Shared augmentation window** (spatial randomness).  Per
(video, epoch, sample): pick one random window large enough for the
largest crop any task needs; each task's crop samples a sub-region.
Tasks with equal crop size (and the same pre-crop shape) receive the
*same* sub-region, which is what makes their augmented nodes mergeable
(Fig 16's 33.1% random-crop reduction).

Everything is deterministic given the coordinator seed: parameters are
drawn from RNGs keyed by stable hashes of (video, epoch, sample, op),
never by task — two tasks asking the same question get the same answer,
which *is* the coordination.  The ``coordinated=False`` mode keys by task
and iteration instead, reproducing the fresh-randomness baselines of
Figs 16, 19 and 20.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.augment.ops import AugmentOp, ClipShape, Params, stable_params_key
from repro.augment.pipeline import ParamSampler
from repro.core.config import TaskConfig


def stable_rng(*parts: object) -> np.random.Generator:
    """A deterministic RNG keyed by a tuple of printable parts."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


@dataclass(frozen=True)
class TaskRequirement:
    """The slice of a task config the coordinator needs."""

    tag: str
    frames_per_video: int
    frame_stride: int
    samples_per_video: int

    @classmethod
    def of(cls, config: TaskConfig) -> "TaskRequirement":
        s = config.sampling
        return cls(
            tag=config.tag,
            frames_per_video=s.frames_per_video,
            frame_stride=s.frame_stride,
            samples_per_video=s.samples_per_video,
        )

    @property
    def clip_span(self) -> int:
        return (self.frames_per_video - 1) * self.frame_stride + 1


@dataclass(frozen=True)
class PoolSelection:
    """The shared pool for one (video, epoch): a window on the GCD grid."""

    start: int
    grid: int
    span: int

    @property
    def positions(self) -> List[int]:
        return list(range(self.start, self.start + self.span, self.grid))


class FramePoolCoordinator:
    """Implements the shared frame pool across a set of tasks."""

    def __init__(
        self,
        requirements: Sequence[TaskRequirement],
        seed: int = 0,
        coordinated: bool = True,
    ):
        if not requirements:
            raise ValueError("need at least one task requirement")
        tags = [r.tag for r in requirements]
        if len(set(tags)) != len(tags):
            raise ValueError(f"duplicate task tags: {tags}")
        self.requirements: Dict[str, TaskRequirement] = {r.tag: r for r in requirements}
        self.seed = seed
        self.coordinated = coordinated
        # Step (2): the unified grid accommodates every task's stride.
        self.grid = math.gcd(*(r.frame_stride for r in requirements))
        # Step (3): the pool must cover the largest clip any task needs —
        # and hold "sufficient frames for any task configuration": a task
        # drawing S samples per video needs slack for S *distinct* clips,
        # so the span grows with the maximum samples_per_video.
        max_clip = max(r.clip_span for r in requirements)
        max_samples = max(r.samples_per_video for r in requirements)
        self.max_span = max_clip + (max_samples - 1) * (max_clip // 2 + self.grid)

    # -- pool construction -------------------------------------------------------
    def pool_for(self, video_id: str, epoch: int, num_frames: int) -> PoolSelection:
        """The shared pool window for one (video, epoch)."""
        span = min(self.max_span, num_frames)
        rng = stable_rng(self.seed, "pool", video_id, epoch)
        latest = num_frames - span
        # Keep the pool start on the grid so every task's stride pattern
        # lands on pooled positions.
        start = int(rng.integers(0, latest // self.grid + 1)) * self.grid
        return PoolSelection(start=start, grid=self.grid, span=span)

    # -- per-task selection ------------------------------------------------------
    def select(
        self,
        task: str,
        video_id: str,
        epoch: int,
        sample_idx: int,
        num_frames: int,
        iteration: Optional[int] = None,
    ) -> List[int]:
        """Frame indices for one sample of ``task`` on ``video_id``.

        Coordinated mode draws from the shared pool; independent mode
        re-randomizes from the whole video (keyed additionally by task
        and iteration — the baseline behaviour).
        """
        req = self.requirements[task]
        if not self.coordinated:
            rng = stable_rng(
                self.seed, "indep", task, video_id, epoch, sample_idx, iteration
            )
            return self._sample_anywhere(req, num_frames, rng)

        pool = self.pool_for(video_id, epoch, num_frames)
        span = req.clip_span
        if span > pool.span:
            # Video shorter than the clip: wrap around the pool's grid
            # positions (rare; mirrors loop-padding in real loaders).
            # Wrapping in position-index space keeps every pick on the
            # shared grid even when the span is not a grid multiple.
            positions = pool.positions
            rng = stable_rng(self.seed, "wrap", video_id, epoch, sample_idx)
            start_idx = int(rng.integers(0, len(positions)))
            step = max(1, req.frame_stride // self.grid)
            return [
                positions[(start_idx + i * step) % len(positions)]
                for i in range(req.frames_per_video)
            ]
        # Random offset on the grid, so the clip stays inside the pool.
        # Keyed by (video, epoch, sample, clip geometry) but NOT task:
        # tasks with identical geometry pick identical frames (merge!).
        rng = stable_rng(
            self.seed,
            "draw",
            video_id,
            epoch,
            sample_idx,
            req.frames_per_video,
            req.frame_stride,
        )
        slack = (pool.span - span) // self.grid
        offset = int(rng.integers(0, slack + 1)) * self.grid
        start = pool.start + offset
        return [start + i * req.frame_stride for i in range(req.frames_per_video)]

    @staticmethod
    def _sample_anywhere(
        req: TaskRequirement, num_frames: int, rng: np.random.Generator
    ) -> List[int]:
        span = req.clip_span
        if span <= num_frames:
            start = int(rng.integers(0, num_frames - span + 1))
            return [start + i * req.frame_stride for i in range(req.frames_per_video)]
        start = int(rng.integers(0, num_frames))
        return [
            (start + i * req.frame_stride) % num_frames
            for i in range(req.frames_per_video)
        ]


class SharedWindowSampler:
    """Implements the shared augmentation window and coordinated op params.

    Returns a :data:`~repro.augment.pipeline.ParamSampler` for one
    (video, epoch, sample) context.  Within that context:

    * a stochastic spatial op samples inside the single shared window
      (created on first use, sized to the largest crop any task needs),
    * equal-size crops get the *same* sub-region (cached per size),
    * other stochastic ops draw from an RNG keyed by (context, op,
      config) — identical ops in different tasks agree.

    Independent mode (``coordinated=False``) keys everything by task and
    iteration, so every task re-rolls everything — the baseline.
    """

    def __init__(
        self,
        max_window_hw: Optional[Tuple[int, int]],
        seed: int = 0,
        coordinated: bool = True,
    ):
        self.max_window_hw = max_window_hw
        self.seed = seed
        self.coordinated = coordinated
        # (context key, clip hw) -> window; (context key, clip hw, size) -> params
        self._windows: Dict[Tuple, Tuple[int, int, int, int]] = {}
        self._crop_params: Dict[Tuple, Params] = {}

    @staticmethod
    def required_window(tasks: Sequence[TaskConfig]) -> Optional[Tuple[int, int]]:
        """Step (1): the max spatial dimensions any task's crops need."""
        best: Optional[Tuple[int, int]] = None
        for config in tasks:
            for op in config.plan.stochastic_spatial_ops():
                h, w = op.window_size((1, 10**6, 10**6, 3))
                if best is None:
                    best = (h, w)
                else:
                    best = (max(best[0], h), max(best[1], w))
        return best

    def _window_for(
        self, context: Tuple, clip_shape: ClipShape
    ) -> Tuple[int, int, int, int]:
        _, h, w, _ = clip_shape
        key = (context, h, w)
        if key not in self._windows:
            assert self.max_window_hw is not None
            wh = min(self.max_window_hw[0], h)
            ww = min(self.max_window_hw[1], w)
            rng = stable_rng(self.seed, "window", *key)
            top = int(rng.integers(0, h - wh + 1))
            left = int(rng.integers(0, w - ww + 1))
            self._windows[key] = (top, left, wh, ww)
        return self._windows[key]

    def param_sampler(
        self,
        video_id: str,
        epoch: int,
        sample_idx: int,
        task: Optional[str] = None,
        iteration: Optional[int] = None,
    ) -> ParamSampler:
        if self.coordinated:
            context = (video_id, epoch, sample_idx)
        else:
            context = (video_id, epoch, sample_idx, task, iteration)

        def sampler(
            op: AugmentOp, clip_shape: ClipShape, rng: np.random.Generator
        ) -> Params:
            del rng  # all randomness is re-derived deterministically
            op_rng = stable_rng(
                self.seed, "op", *context, op.name, stable_params_key(op.config)
            )
            if not op.spatial_window:
                return op.sample_params(op_rng, clip_shape)
            if not self.coordinated or self.max_window_hw is None:
                return op.sample_params(op_rng, clip_shape)
            window = self._window_for(context, clip_shape)
            size = op.window_size(clip_shape)
            crop_key = (context, clip_shape[1], clip_shape[2], size)
            if crop_key not in self._crop_params:
                crop_rng = stable_rng(self.seed, "crop", *crop_key)
                self._crop_params[crop_key] = op.sample_params_within(
                    crop_rng, clip_shape, window
                )
            return dict(self._crop_params[crop_key])

        return sampler


class EpochSchedule:
    """Data Access Rule (S5.2): every video exactly once per epoch.

    Coordinated mode gives every task the *same* per-epoch permutation so
    concurrent tasks walk the dataset in lockstep (what lets the
    hyperparameter-search scenario share real-time materialization);
    independent mode permutes per task.
    """

    def __init__(self, video_ids: Sequence[str], seed: int = 0, coordinated: bool = True):
        if not video_ids:
            raise ValueError("empty dataset")
        self.video_ids = list(video_ids)
        self.seed = seed
        self.coordinated = coordinated

    def order(self, task: str, epoch: int) -> List[str]:
        key = ("order", epoch) if self.coordinated else ("order", task, epoch)
        rng = stable_rng(self.seed, *key)
        permutation = rng.permutation(len(self.video_ids))
        return [self.video_ids[i] for i in permutation]

    def batches(
        self, task: str, epoch: int, videos_per_batch: int
    ) -> List[List[str]]:
        """Full batches of videos for one epoch (trailing remainder dropped)."""
        if videos_per_batch < 1:
            raise ValueError("videos_per_batch must be >= 1")
        order = self.order(task, epoch)
        count = len(order) // videos_per_batch
        return [
            order[i * videos_per_batch : (i + 1) * videos_per_batch]
            for i in range(count)
        ]

    def iterations_per_epoch(self, videos_per_batch: int) -> int:
        return len(self.video_ids) // videos_per_batch
