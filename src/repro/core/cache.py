"""The materialized-object cache manager (paper S6).

Wraps the budgeted local store with SAND's eviction policy: when usage
crosses 75% of the budget, evict in order

1. objects that have already been used and are not required again in the
   current plan window, then
2. objects with the longest deadlines (furthest future first use) —
   Belady's clairvoyant rule, exact here because tasks register their
   schedules up front; equal deadlines break toward larger blobs first,

until usage is back under the watermark.  Deadlines come from the plan's
batch table; the trainer's progress is reported via :meth:`advance`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.locks import make_rlock
from repro.core.concrete_graph import MaterializationPlan
from repro.core.pruning import PruningOutcome
from repro.storage.local import LocalStore
from repro.storage.objectstore import StorageFullError, TransientStorageError


class CacheManager:
    """Deadline-aware eviction over a :class:`LocalStore`.

    ``policy`` selects the eviction order: ``"deadline"`` is the paper's
    S6 policy; ``"fifo"`` evicts oldest-inserted first, ignoring the
    plan — the ablation baseline showing why deadline awareness matters.
    """

    POLICIES = ("deadline", "fifo")

    def __init__(self, store: LocalStore, policy: str = "deadline"):
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, got {policy!r}")
        self.store = store
        self.policy = policy
        self._lock = make_rlock("cache-manager")
        # key -> sorted steps at which the object is consumed (min over
        # tasks per use; conservative for multi-task objects).
        self._use_steps: Dict[str, List[int]] = {}
        self._current_step = 0
        self._insert_seq: Dict[str, int] = {}
        self._next_seq = 0
        self.evictions = 0
        self.demotions = 0

    # -- plan registration ----------------------------------------------------
    def register_plan(
        self, plan: MaterializationPlan, pruning: Optional[PruningOutcome] = None
    ) -> None:
        """Record when each cacheable object will be needed."""
        with self._lock:
            self._use_steps.clear()
            self._current_step = 0
            for video_id, graph in plan.graphs.items():
                frontier = (
                    pruning.frontier_of(video_id)
                    if pruning is not None
                    else {leaf.key for leaf in graph.leaves()}
                )
                for key in frontier:
                    node = graph.nodes[key]
                    steps: List[int] = []
                    # A cached node is needed whenever any leaf below it is.
                    for desc_key in graph.subtree_keys(key):
                        desc = graph.nodes[desc_key]
                        for use in desc.uses:
                            steps.append(
                                plan.global_step(use.task, use.epoch, use.iteration)
                            )
                    if not steps and node.uses:
                        steps = [
                            plan.global_step(u.task, u.epoch, u.iteration)
                            for u in node.uses
                        ]
                    self._use_steps[key] = sorted(steps)

    def advance(self, step: int) -> None:
        """Report training progress (max step across tasks is fine)."""
        with self._lock:
            self._current_step = max(self._current_step, step)

    # -- policy ------------------------------------------------------------------
    def deadline_of(self, key: str) -> Optional[int]:
        """Next future use step of ``key``; None if never needed again."""
        steps = self._use_steps.get(key)
        if not steps:
            return None
        for step in steps:
            if step >= self._current_step:
                return step
        return None

    def _eviction_order(self) -> List[Tuple[int, int, int, str]]:
        """Keys in eviction order (policy-dependent).

        The deadline policy is Belady's clairvoyant rule over the plan's
        batch table: class 1 is objects with no future use (Belady's
        "never used again" — always first out), class 2 ranks by exact
        next-use distance, farthest first.  Among equal deadlines, larger
        blobs go first — one eviction call frees more bytes, so byte
        pressure is relieved with fewer deletions — with the key as the
        final deterministic tie-break.
        """
        ranked: List[Tuple[int, int, int, str]] = []
        # Tiered stores distinguish the evictable hot set from the full
        # key set (remote-only keys hold their last replica — deleting
        # them would be data loss, and demoting them frees nothing).
        hot_keys = getattr(self.store, "hot_keys", self.store.keys)
        for key in hot_keys():
            if self.policy == "fifo":
                ranked.append((0, self._insert_seq.get(key, 0), 0, key))
                continue
            deadline = self.deadline_of(key)
            if deadline is None:
                ranked.append((0, 0, 0, key))  # class 1: never needed again
            else:
                size = self.store.size_of(key) or 0
                ranked.append((1, -deadline, -size, key))  # class 2
        ranked.sort()
        return ranked

    def maybe_evict(self) -> int:
        """Enforce the watermark; returns number of objects evicted."""
        with self._lock:
            if not self.store.above_watermark():
                return 0
            target = self.store.bytes_over_watermark()
            return self._evict_bytes(target)

    def _evict_bytes(self, nbytes: int) -> int:
        """Reclaim local bytes: demote where the store supports tiers.

        With a tiered store, eviction *demotes* — the bytes move to the
        warm tier and the object stays recoverable by copy instead of
        recompute (prune-and-demote, not prune-and-delete).  Demotion
        failure (warm tier down or full) falls back to deletion so byte
        pressure is always relieved.
        """
        freed = 0
        count = 0
        demoter = getattr(self.store, "demote", None)
        for _, _, _, key in self._eviction_order():
            if freed >= nbytes:
                break
            size = self.store.size_of(key) or 0
            if demoter is not None and demoter(key):
                freed += size
                count += 1
                self.demotions += 1
                continue
            if self.store.delete(key):
                freed += size
                count += 1
                self.evictions += 1
        return count

    # -- store facade ---------------------------------------------------------------
    def put(self, key: str, data: bytes) -> bool:
        """Store an object, evicting by policy if needed.

        Returns False when the object cannot fit even after eviction
        (e.g. larger than the whole budget) — the caller keeps it in
        memory or recomputes, it is never an error.
        """
        with self._lock:
            needed = len(data)
            if needed > self.store.capacity_bytes:
                return False
            if needed > self.store.free_bytes:
                self._evict_bytes(needed - self.store.free_bytes)
            try:
                self.store.put(key, data)
            except (StorageFullError, TransientStorageError):
                # Full: the object is simply not cacheable right now.
                # Transient: skip this persist — the caller keeps the
                # object in memory and a later access re-attempts it.
                return False
            self._insert_seq[key] = self._next_seq
            self._next_seq += 1
            self.maybe_evict()
            return True

    def get(self, key: str) -> Optional[bytes]:
        return self.store.get(key)

    def get_view(self, key: str) -> Optional[memoryview]:
        """Zero-copy read where the store supports it (packed segments).

        The view is only valid until the next store mutation; callers
        must consume (decode) it before putting or evicting.
        """
        reader = getattr(self.store, "get_view", None)
        if reader is None:
            data = self.store.get(key)
            return None if data is None else memoryview(data)
        return reader(key)

    def __contains__(self, key: str) -> bool:
        return key in self.store

    def delete(self, key: str) -> bool:
        with self._lock:
            return self.store.delete(key)

    def flush(self) -> int:
        """Force write-behind store buffers down; no-op otherwise."""
        flusher = getattr(self.store, "flush", None)
        return flusher() if flusher is not None else 0

    def close(self) -> None:
        """Stop background store machinery (write-behind flusher)."""
        closer = getattr(self.store, "close", None)
        if closer is not None:
            closer()
