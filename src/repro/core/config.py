"""Task configuration: the Fig-9 API, validated into typed objects.

A task config has two sections (paper S5.1): *video handling* (dataset
path, input source, the sampling policy) and *augmentation* (the
branch-structured pipeline).  Configs arrive as YAML text, a file path,
or an already-parsed mapping, and are validated into a
:class:`TaskConfig`, which owns the task's built
:class:`~repro.augment.pipeline.AugmentationPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence, Union

from repro.augment.pipeline import AugmentationPlan, build_plan
from repro.augment.registry import OpRegistry
from repro.core import yamlmini

INPUT_SOURCES = ("file", "streaming")


class ConfigError(ValueError):
    """Raised for missing/invalid configuration fields."""


@dataclass(frozen=True)
class SamplingPolicy:
    """The video-handling half of a task config (Fig 9 ``sampling``)."""

    videos_per_batch: int = 8
    frames_per_video: int = 8
    frame_stride: int = 1
    samples_per_video: int = 1

    def __post_init__(self) -> None:
        for name in (
            "videos_per_batch",
            "frames_per_video",
            "frame_stride",
            "samples_per_video",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(f"sampling.{name} must be a positive int, got {value!r}")

    @property
    def clip_span(self) -> int:
        """Source frames one sample's selection window covers."""
        return (self.frames_per_video - 1) * self.frame_stride + 1

    @property
    def samples_per_batch(self) -> int:
        return self.videos_per_batch * self.samples_per_video


@dataclass
class TaskConfig:
    """One validated training task."""

    tag: str
    video_dataset_path: str
    sampling: SamplingPolicy
    augmentation_raw: List[Mapping[str, Any]] = field(default_factory=list)
    input_source: str = "file"
    plan: AugmentationPlan = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.tag:
            raise ConfigError("dataset.tag is required")
        if self.input_source not in INPUT_SOURCES:
            raise ConfigError(
                f"input_source must be one of {INPUT_SOURCES}, got {self.input_source!r}"
            )
        if not self.video_dataset_path:
            raise ConfigError("dataset.video_dataset_path is required")


def _as_mapping(source: Union[str, Path, Mapping[str, Any]]) -> Mapping[str, Any]:
    if isinstance(source, Mapping):
        return source
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith((".yaml", ".yml"))
    ):
        parsed = yamlmini.load_file(source)
    else:
        parsed = yamlmini.loads(str(source))
    if not isinstance(parsed, Mapping):
        raise ConfigError(f"config must be a mapping, got {type(parsed).__name__}")
    return parsed


def load_task_config(
    source: Union[str, Path, Mapping[str, Any]],
    registry: Optional[OpRegistry] = None,
) -> TaskConfig:
    """Parse and validate one task config (YAML text, file path, or dict)."""
    raw = _as_mapping(source)
    dataset = raw.get("dataset", raw)
    if not isinstance(dataset, Mapping):
        raise ConfigError("'dataset' section must be a mapping")

    unknown = set(dataset) - {
        "tag",
        "input_source",
        "video_dataset_path",
        "sampling",
        "augmentation",
    }
    if unknown:
        raise ConfigError(f"unknown dataset keys: {sorted(unknown)}")

    sampling_raw = dataset.get("sampling") or {}
    if not isinstance(sampling_raw, Mapping):
        raise ConfigError("'sampling' must be a mapping")
    unknown = set(sampling_raw) - {
        "videos_per_batch",
        "frames_per_video",
        "frame_stride",
        "samples_per_video",
    }
    if unknown:
        raise ConfigError(f"unknown sampling keys: {sorted(unknown)}")
    sampling = SamplingPolicy(**dict(sampling_raw))

    augmentation = dataset.get("augmentation") or []
    if not isinstance(augmentation, Sequence) or isinstance(augmentation, str):
        raise ConfigError("'augmentation' must be a list of blocks")
    plan = build_plan(augmentation, registry=registry)

    config = TaskConfig(
        tag=str(dataset.get("tag", "")),
        input_source=str(dataset.get("input_source", "file")),
        video_dataset_path=str(dataset.get("video_dataset_path", "")),
        sampling=sampling,
        augmentation_raw=list(augmentation),
    )
    config.plan = plan
    return config


def load_task_configs(
    sources: Sequence[Union[str, Path, Mapping[str, Any]]],
    registry: Optional[OpRegistry] = None,
) -> List[TaskConfig]:
    """Load several task configs, enforcing unique tags."""
    configs = [load_task_config(src, registry=registry) for src in sources]
    tags = [cfg.tag for cfg in configs]
    if len(set(tags)) != len(tags):
        raise ConfigError(f"task tags must be unique, got {tags}")
    return configs
