"""Turning graph nodes into real arrays: the per-video materializer.

A :class:`VideoMaterializer` executes one video's concrete graph: it
decodes the union of wanted frames in a dependency-aware, GOP-coalesced
pass ("decode once", the paper's core amortization), memoizes
intermediate arrays in memory, consults/fills the persistent cache for
nodes on the caching frontier, and applies augmentation ops
reconstructed (and memoized) from the node's stored
``(name, config, params)`` identity.  Once a window's work for the video
is done, :meth:`release_raw_frames` drops decoded frames from memory —
the S5.4 step that keeps memory pressure bounded — while the decoder's
byte-budgeted anchor cache survives, so later sparse accesses resume
from the nearest cached anchor instead of the GOP keyframe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.locks import make_rlock
from repro.analysis.sanitizers import buffer_sanitizer
from repro.augment.fusion import TrafficLedger, plan_for
from repro.augment.ops import AugmentOp
from repro.augment.registry import OpRegistry, default_registry
from repro.codec.container import ContainerError
from repro.codec.incremental import AnchorCache
from repro.codec.registry import VideoDecoder, open_decoder
from repro.codec.signals import FrameSignals
from repro.core.concrete_graph import ObjectNode, VideoGraph
from repro.storage.blobs import BlobError, decode_array, encode_array
from repro.storage.objectstore import (
    CorruptObjectError,
    ObjectStore,
    StorageFullError,
    TransientStorageError,
)


@dataclass
class MaterializeStats:
    """Counters for one materializer's work."""

    frames_decoded: int = 0
    frames_reused_from_anchor_cache: int = 0
    frames_skipped_near_duplicate: int = 0
    ops_applied: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_stores: int = 0
    corrupt_evictions: int = 0
    transient_errors: int = 0
    fallback_rematerializations: int = 0
    bytes_in_memory: int = 0
    # Memory traffic (passes over clip data, bytes moved) — priced with
    # the same policy on the fused and unfused execution paths.
    traffic: TrafficLedger = field(default_factory=TrafficLedger)

    def count_op(self, name: str) -> None:
        self.ops_applied[name] = self.ops_applied.get(name, 0) + 1


@lru_cache(maxsize=4096)
def _op_from_args_cached(
    registry: OpRegistry, name: str, config_json: str, params_json: str
) -> Tuple[AugmentOp, dict]:
    op = registry.create(name, json.loads(config_json))
    return op, json.loads(params_json)


def _op_from_args(
    registry: OpRegistry, op_args: Tuple[str, str, str]
) -> Tuple[AugmentOp, dict]:
    # Hot path: node applications repeat the same (name, config, params)
    # identity thousands of times per window; reconstructing the op and
    # re-parsing both JSON blobs each time dominated `_compute`.  Ops are
    # stateless once created and `apply` treats params as read-only, so
    # the memoized instances are safe to share.
    name, config_json, params_json = op_args
    return _op_from_args_cached(registry, name, config_json, params_json)


class VideoMaterializer:
    """Computes any node of one video's graph, with memoization and cache.

    ``frontier`` (from pruning) is the set of node keys that should be
    persisted to ``cache``; other nodes are held in memory only.  Thread
    safe: concurrent ``get`` calls on the same materializer serialize on
    an internal lock (one video = one subtree = effectively one worker,
    per the paper's thread-per-subtree assignment, but demand feeding may
    race a pre-materialization worker on the same video).
    """

    def __init__(
        self,
        graph: VideoGraph,
        encoded: bytes,
        cache: Optional[ObjectStore] = None,
        frontier: Optional[Set[str]] = None,
        registry: Optional[OpRegistry] = None,
        anchor_cache: Optional[AnchorCache] = None,
        decoder_wrapper=None,
        fusion_enabled: bool = True,
        reuse_threshold: float = 0.0,
    ):
        if reuse_threshold < 0:
            raise ValueError(f"reuse_threshold must be >= 0, got {reuse_threshold}")
        self.graph = graph
        self._encoded = encoded
        self.cache = cache
        self.frontier = frontier or set()
        self.registry = registry or default_registry()
        self.anchor_cache = anchor_cache
        self.reuse_threshold = reuse_threshold
        # Lazy codec signals for near-dup slot reuse; False = probed and
        # unavailable (all-intra container with no delta track).
        self._signals: Optional[FrameSignals] = None
        self._signals_probed = False
        # Operator fusion: execute aug chains as compiled gather segments
        # and collate samples into preallocated buffers.  Off = the
        # step-by-step reference path (still traffic-instrumented).
        self._fusion_enabled = fusion_enabled
        # Optional hook (video_decoder, video_id) -> decoder, used by the
        # fault-injection harness to wrap decoders in failure proxies.
        self.decoder_wrapper = decoder_wrapper
        self.stats = MaterializeStats()
        self._memo: Dict[str, np.ndarray] = {}
        self._decoder: Optional[VideoDecoder] = None
        self._lock = make_rlock("materializer")

    # -- public API ---------------------------------------------------------
    def get(self, key: str) -> np.ndarray:
        """Materialize one node (frames: (1,H,W,3); samples: (T,h,w,C))."""
        with self._lock:
            return self._get_locked(key)

    def get_into(self, key: str, out: np.ndarray) -> bool:
        """Materialize ``key`` directly into ``out`` (copy elision).

        The fast path computes a single-use, uncached sample leaf
        straight into the caller's buffer (the batch slot) without
        memoizing it — with fusion's pointwise epilogue, the write into
        ``out`` is the op's only output pass, and with a pooled delivery
        buffer as the destination, the trainer reads these exact bytes.
        Anything shared, cached, frontier-bound, or clip-op-bearing
        falls back to ``get`` + copy so caching and reuse decisions are
        unchanged.  Returns True when the fast path wrote ``out``
        directly, False on the fallback copy (the engine's dataplane
        stats count both).
        """
        with self._lock:
            node = self.graph.nodes.get(key)
            if node is None:
                raise KeyError(f"{self.graph.video_id}: unknown node {key!r}")
            if (
                self._fusion_enabled
                and node.kind == "sample"
                and not node.clip_ops
                and len(node.uses) <= 1
                and key not in self._memo
                and key not in self.frontier
                and (self.cache is None or key not in self.cache)
            ):
                self._compute_sample_fused(node, out=out)
                sanitizer = buffer_sanitizer()
                if sanitizer is not None:
                    # The slot now holds the leaf's final bytes; anything
                    # rewriting it before the trainer consumes the batch
                    # is a write-after-share on the copy-elision path.
                    sanitizer.guard(
                        out, f"copy-elision slot {self.graph.video_id}:{key}"
                    )
                return True
            array = self._get_locked(key)
            np.copyto(out, array, casting="no")
            self.stats.traffic.charge(out.nbytes, allocated=False)
            return False

    def materialize_frontier(self) -> int:
        """Compute and persist every frontier node; returns nodes stored."""
        stored = 0
        for key in sorted(self.frontier):
            self.get(key)
            stored += 1
        return stored

    def release_raw_frames(self) -> int:
        """Drop decoded frames from memory (S5.4).

        The decoder survives the release: its anchor cache (byte-budgeted
        on its own) is what makes the *next* sparse access to this video
        cheap, so dropping raw frames no longer forfeits anchor state.
        """
        with self._lock:
            dropped = 0
            for key in list(self._memo):
                if self.graph.nodes[key].kind == "frame":
                    self.stats.bytes_in_memory -= self._memo[key].nbytes
                    del self._memo[key]
                    dropped += 1
            self._check_release_postconditions()
            return dropped

    def _check_release_postconditions(self) -> None:
        """Sanitizer leak check: release must leave no raw frame behind
        and the byte accounting must match the memo's actual contents."""
        sanitizer = buffer_sanitizer()
        if sanitizer is None:
            return
        survivors = [
            key for key in self._memo if self.graph.nodes[key].kind == "frame"
        ]
        if survivors:
            sanitizer.note_leak(
                f"{self.graph.video_id}: {len(survivors)} raw frame(s) "
                f"survived release_raw_frames: {sorted(survivors)[:4]}"
            )
        actual = sum(array.nbytes for array in self._memo.values())
        if actual != self.stats.bytes_in_memory:
            sanitizer.note_leak(
                f"{self.graph.video_id}: bytes_in_memory accounting drift "
                f"({self.stats.bytes_in_memory} tracked vs {actual} actual)"
            )

    def release_all(self) -> None:
        with self._lock:
            self._memo.clear()
            self.stats.bytes_in_memory = 0
            self._decoder = None

    def in_memory(self, key: str) -> bool:
        with self._lock:
            return key in self._memo

    # -- internals ------------------------------------------------------------
    def _get_locked(self, key: str) -> np.ndarray:
        if key in self._memo:
            # Frames land in the memo in bulk (one decode pass covers the
            # whole wanted set), so a memoized frontier object may not
            # have been persisted yet — do it on first access.
            self._persist_if_frontier(key, self._memo[key])
            return self._memo[key]
        node = self.graph.nodes.get(key)
        if node is None:
            raise KeyError(f"{self.graph.video_id}: unknown node {key!r}")

        array = self._load_cached(key)
        if array is not None:
            self._remember(key, array)
            return array

        array = self._compute(node)
        if key not in self._memo:
            self._remember(key, array)
        self._persist_if_frontier(key, array)
        return array

    def _load_cached(self, key: str) -> Optional[np.ndarray]:
        """Fetch+decode a persisted object; ``None`` means recompute.

        Every failure mode degrades to re-materialization from the
        source video rather than poisoning the batch: a corrupt blob
        (checksum mismatch → already quarantined by the store, or a
        decode failure → evicted here) and a transient I/O error (the
        blob survives; only this read gives up) both report ``None``.
        """
        if self.cache is None or key not in self.cache:
            return None
        # Prefer the store's zero-copy read (packed segments serve a
        # memoryview over the segment mmap): the blob decompresses
        # straight out of the page cache with no intermediate copy.
        reader = getattr(self.cache, "get_view", None)
        try:
            blob = reader(key) if reader is not None else self.cache.get(key)
        except CorruptObjectError:
            # The store quarantined the key; recompute from source.
            self.stats.corrupt_evictions += 1
            self.stats.fallback_rematerializations += 1
            return None
        except TransientStorageError:
            self.stats.transient_errors += 1
            self.stats.fallback_rematerializations += 1
            return None
        if blob is None:
            return None
        try:
            array = decode_array(blob)
            if isinstance(blob, memoryview) and array.size and np.shares_memory(
                array, np.frombuffer(blob, dtype=np.uint8)
            ):
                # An uncompressed blob decodes as a view over the mmap,
                # which later store mutations invalidate — detach it.
                # (Compressed blobs already copied during decompress.)
                array = np.array(array, copy=True)
        except BlobError:
            # Corrupted cache entry that slipped past the store's CRC
            # (e.g. in-flight corruption): drop it and recompute — the
            # graph can always regenerate.
            self.cache.delete(key)
            self.stats.corrupt_evictions += 1
            self.stats.fallback_rematerializations += 1
            return None
        self.stats.cache_hits += 1
        return array

    def _persist_if_frontier(self, key: str, array: np.ndarray) -> None:
        if self.cache is None or key not in self.frontier or key in self.cache:
            return
        try:
            self.cache.put(key, encode_array(array))
            self.stats.cache_stores += 1
        except StorageFullError:
            # The cache manager is responsible for eviction; if space is
            # exhausted mid-window we keep the object in memory and
            # recompute later rather than fail the pipeline.
            pass
        except TransientStorageError:
            # Flaky write: skip the persist — the object stays in memory
            # and a later access re-attempts the store.
            self.stats.transient_errors += 1

    def _remember(self, key: str, array: np.ndarray) -> None:
        self._memo[key] = array
        self.stats.bytes_in_memory += array.nbytes

    def _compute(self, node: ObjectNode) -> np.ndarray:
        if node.kind == "video":
            raise ValueError("the encoded video is not a materializable array")
        if node.kind == "frame":
            self._decode_wanted()
            if node.key not in self._memo:  # pragma: no cover - defensive
                raise RuntimeError(f"decode did not produce {node.key}")
            return self._memo[node.key]
        if node.kind == "aug":
            assert node.op_args is not None
            if self._fusion_enabled:
                return self._compute_aug_fused(node)
            parent = self._get_locked(node.parents[0])
            op, params = _op_from_args(self.registry, node.op_args)
            self.stats.count_op(op.name)
            result = op.apply(parent, params)
            self._charge(result, parent)
            return result
        if node.kind == "sample":
            if self._fusion_enabled:
                return self._compute_sample_fused(node)
            frames = [self._get_locked(p) for p in node.parents]
            clip = np.concatenate(frames, axis=0)
            self.stats.traffic.charge(clip.nbytes)
            for op_args in node.clip_ops:
                op, params = _op_from_args(self.registry, op_args)
                self.stats.count_op(op.name)
                result = op.apply(clip, params)
                self._charge(result, clip)
                clip = result
            self.stats.count_op("collate")
            return clip
        raise ValueError(f"unknown node kind {node.kind!r}")

    def _charge(self, result: np.ndarray, source: np.ndarray) -> None:
        """Price one op application: identity returns are free."""
        if result is source:
            self.stats.traffic.identity_skips += 1
        else:
            self.stats.traffic.charge(result.nbytes)

    def _fusable_above(self, key: str) -> bool:
        """May the aug node at ``key`` be computed transiently (skipped)?

        A chain ancestor folds into its descendant's fused plan only if
        nothing else will ever want it materialized: it must not be
        memoized or persisted already, not on the caching frontier, and
        not shared with any other path (``ref_count > 1``).  Breaking
        the chain at those nodes keeps caching/pruning decisions — and
        the concrete graph's node-merge keys — exactly as they were.
        """
        node = self.graph.nodes.get(key)
        if node is None or node.kind != "aug":
            return False
        if key in self._memo or key in self.frontier or node.ref_count > 1:
            return False
        if self.cache is not None and key in self.cache:
            return False
        return True

    def _fused_chain(self, node: ObjectNode) -> Tuple[List[ObjectNode], str]:
        """Longest skip-safe aug chain ending at ``node`` + its base key."""
        chain = [node]
        parent_key = node.parents[0]
        while self._fusable_above(parent_key):
            parent = self.graph.nodes[parent_key]
            chain.append(parent)
            parent_key = parent.parents[0]
        chain.reverse()
        return chain, parent_key

    def _compute_aug_fused(self, node: ObjectNode) -> np.ndarray:
        chain, base_key = self._fused_chain(node)
        base = self._get_locked(base_key)
        plan = plan_for(
            self.registry, tuple(n.op_args for n in chain), base.shape
        )
        for link in chain:
            self.stats.count_op(link.op_args[0])
        return plan.run(base, self.stats.traffic)

    def _compute_sample_fused(
        self, node: ObjectNode, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Collate a sample into one preallocated buffer (or ``out``)."""
        traffic = self.stats.traffic
        parents = node.parents
        first = self._get_locked(parents[0])
        clip_shape = (len(parents),) + first.shape[1:]
        use_out = (
            out is not None
            and not node.clip_ops
            and out.shape == clip_shape
            and out.dtype == first.dtype
        )
        if use_out:
            clip = out
        else:
            clip = np.empty(clip_shape, dtype=first.dtype)
            traffic.bytes_allocated += clip.nbytes
        clip[0:1] = first
        traffic.bytes_copied += first.nbytes
        prev_identity = self._slot_identity(parents[0])
        for t, parent_key in enumerate(parents[1:], start=1):
            identity = self._slot_identity(parent_key)
            if (
                identity is not None
                and identity == prev_identity
                and self._slot_reuse_allowed(parent_key)
            ):
                # Near-duplicate slot reuse: this parent's chain produces
                # byte-identical output to the previous slot (same
                # effective source frame, same op identities), so copy
                # the neighbor instead of re-running the chain.
                np.copyto(clip[t : t + 1], clip[t - 1 : t])
                traffic.note_slot_reuse(
                    clip[t].nbytes, passes_skipped=len(identity[1])
                )
            else:
                self._materialize_parent_into(parent_key, clip[t : t + 1])
            prev_identity = identity
        traffic.clip_passes += 1  # the collation write
        self.stats.count_op("collate")
        result: np.ndarray = clip
        for op_args in node.clip_ops:
            op, params = _op_from_args(self.registry, op_args)
            self.stats.count_op(op.name)
            applied = op.apply(result, params)
            self._charge(applied, result)
            result = applied
        if use_out:
            return out
        if out is not None:
            np.copyto(out, result, casting="no")
            traffic.charge(out.nbytes, allocated=False)
            return out
        return result

    def _frame_signals(self) -> Optional[FrameSignals]:
        """Codec signals for this video, or None (no delta track / intra)."""
        if not self._signals_probed:
            self._signals_probed = True
            try:
                self._signals = FrameSignals.from_container(self._encoded)
            except ContainerError:
                # All-intra SVI1 (or any non-SVC1 container): no signals.
                self._signals = None
        return self._signals

    def _slot_identity(
        self, key: str
    ) -> Optional[Tuple[Tuple[str, object], Tuple[Tuple[str, str, str], ...]]]:
        """Content identity of a collation parent for near-dup slot reuse.

        Walks the parent's *full* augmentation chain down to its base
        (ignoring memoization state, so the identity is a pure function
        of the graph and the container bytes) and keys the base frame by
        its threshold-collapsed effective index.  Two parents with equal
        identities produce byte-identical output.  None disables reuse
        for this slot (threshold off, no delta track, or unrecognized
        chain shape).
        """
        if self.reuse_threshold <= 0:
            return None
        signals = self._frame_signals()
        if signals is None or not signals.has_deltas:
            return None
        ops: List[Tuple[str, str, str]] = []
        node = self.graph.nodes.get(key)
        while node is not None and node.kind == "aug":
            if node.op_args is None:  # pragma: no cover - aug nodes carry args
                return None
            ops.append(node.op_args)
            node = self.graph.nodes.get(node.parents[0])
        if node is None:
            return None
        if node.kind == "frame" and node.frame_index is not None:
            base: Tuple[str, object] = (
                "frame",
                signals.effective_frame(node.frame_index, self.reuse_threshold),
            )
        else:
            base = ("key", node.key)
        return (base, tuple(reversed(ops)))

    def _slot_reuse_allowed(self, key: str) -> bool:
        """May this parent's materialization be skipped entirely?

        Mirrors the ``_materialize_parent_into`` fast-path conditions:
        only a single-use aug node that nothing else will read (not
        memoized, not frontier-bound, not persisted) can go unmaterialized
        without changing caching or sharing behavior.
        """
        node = self.graph.nodes.get(key)
        return (
            node is not None
            and node.kind == "aug"
            and node.ref_count <= 1
            and key not in self._memo
            and key not in self.frontier
            and (self.cache is None or key not in self.cache)
        )

    def _materialize_parent_into(self, key: str, slot: np.ndarray) -> None:
        """Write one collation parent into its slot of the clip buffer.

        Single-use aug chains compute straight into the slot through
        their fused plan (the pointwise epilogue writes there); anything
        memoized, cached, or shared materializes normally and copies.
        """
        node = self.graph.nodes.get(key)
        if (
            node is not None
            and node.kind == "aug"
            and node.ref_count <= 1
            and key not in self._memo
            and key not in self.frontier
            and (self.cache is None or key not in self.cache)
        ):
            chain, base_key = self._fused_chain(node)
            base = self._get_locked(base_key)
            plan = plan_for(
                self.registry, tuple(n.op_args for n in chain), base.shape
            )
            for link in chain:
                self.stats.count_op(link.op_args[0])
            result = plan.run(base, self.stats.traffic, out=slot)
            if result is not slot:
                np.copyto(slot, result, casting="no")
                self.stats.traffic.bytes_copied += slot.nbytes
            return
        array = self._get_locked(key)
        np.copyto(slot, array, casting="no")
        self.stats.traffic.bytes_copied += slot.nbytes

    def _decode_wanted(self) -> None:
        """Decode the union of wanted frames, GOP by GOP, and memoize them.

        Frames already persisted in the object cache skip their payload
        reads entirely; the rest are coalesced per GOP and fed to the
        (persistent) decoder one GOP at a time, so anchor-cache reuse is
        priced per keyframe interval and decode stats accumulate as
        deltas — a decoder re-opened after ``release_all`` no longer
        resets the materializer's counters.
        """
        missing = [
            n.frame_index
            for n in self.graph.frames()
            if n.key not in self._memo and n.frame_index is not None
        ]
        if self.cache is not None:
            # Frames already persisted (frontier at frame level) load from
            # cache instead of decode; only truly absent ones decode.
            pending = []
            for index in missing:
                key = f"frame:{self.graph.video_id}:{index}"
                array = self._load_cached(key)
                if array is not None:
                    self._remember(key, array)
                else:
                    pending.append(index)
            missing = pending
        if not missing:
            return
        if self._decoder is None:
            self._decoder = open_decoder(
                self._encoded,
                anchor_cache=self.anchor_cache,
                reuse_threshold=self.reuse_threshold,
            )
            if self.decoder_wrapper is not None:
                self._decoder = self.decoder_wrapper(
                    self._decoder, self.graph.video_id
                )
        gop = self.graph.metadata.gop
        by_gop: Dict[int, List[int]] = {}
        for index in missing:
            by_gop.setdefault(gop.gop_of(index), []).append(index)
        for gop_id in sorted(by_gop):
            before = self._decoder.stats.frames_decoded
            before_reused = self._decoder.stats.frames_reused_from_anchor_cache
            before_skipped = self._decoder.stats.frames_skipped_near_duplicate
            frames = self._decoder.decode_frames(by_gop[gop_id])
            self.stats.frames_decoded += (
                self._decoder.stats.frames_decoded - before
            )
            self.stats.frames_reused_from_anchor_cache += (
                self._decoder.stats.frames_reused_from_anchor_cache - before_reused
            )
            self.stats.frames_skipped_near_duplicate += (
                self._decoder.stats.frames_skipped_near_duplicate - before_skipped
            )
            for index, pixels in frames.items():
                self._remember(
                    f"frame:{self.graph.video_id}:{index}", pixels[np.newaxis, ...]
                )
