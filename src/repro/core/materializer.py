"""Turning graph nodes into real arrays: the per-video materializer.

A :class:`VideoMaterializer` executes one video's concrete graph: it
decodes the union of wanted frames in a dependency-aware, GOP-coalesced
pass ("decode once", the paper's core amortization), memoizes
intermediate arrays in memory, consults/fills the persistent cache for
nodes on the caching frontier, and applies augmentation ops
reconstructed (and memoized) from the node's stored
``(name, config, params)`` identity.  Once a window's work for the video
is done, :meth:`release_raw_frames` drops decoded frames from memory —
the S5.4 step that keeps memory pressure bounded — while the decoder's
byte-budgeted anchor cache survives, so later sparse accesses resume
from the nearest cached anchor instead of the GOP keyframe.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.augment.ops import AugmentOp
from repro.augment.registry import OpRegistry, default_registry
from repro.codec.incremental import AnchorCache
from repro.codec.registry import VideoDecoder, open_decoder
from repro.core.concrete_graph import ObjectNode, VideoGraph
from repro.storage.blobs import BlobError, decode_array, encode_array
from repro.storage.objectstore import (
    CorruptObjectError,
    ObjectStore,
    StorageFullError,
    TransientStorageError,
)


@dataclass
class MaterializeStats:
    """Counters for one materializer's work."""

    frames_decoded: int = 0
    frames_reused_from_anchor_cache: int = 0
    ops_applied: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_stores: int = 0
    corrupt_evictions: int = 0
    transient_errors: int = 0
    fallback_rematerializations: int = 0
    bytes_in_memory: int = 0

    def count_op(self, name: str) -> None:
        self.ops_applied[name] = self.ops_applied.get(name, 0) + 1


@lru_cache(maxsize=4096)
def _op_from_args_cached(
    registry: OpRegistry, name: str, config_json: str, params_json: str
) -> Tuple[AugmentOp, dict]:
    op = registry.create(name, json.loads(config_json))
    return op, json.loads(params_json)


def _op_from_args(
    registry: OpRegistry, op_args: Tuple[str, str, str]
) -> Tuple[AugmentOp, dict]:
    # Hot path: node applications repeat the same (name, config, params)
    # identity thousands of times per window; reconstructing the op and
    # re-parsing both JSON blobs each time dominated `_compute`.  Ops are
    # stateless once created and `apply` treats params as read-only, so
    # the memoized instances are safe to share.
    name, config_json, params_json = op_args
    return _op_from_args_cached(registry, name, config_json, params_json)


class VideoMaterializer:
    """Computes any node of one video's graph, with memoization and cache.

    ``frontier`` (from pruning) is the set of node keys that should be
    persisted to ``cache``; other nodes are held in memory only.  Thread
    safe: concurrent ``get`` calls on the same materializer serialize on
    an internal lock (one video = one subtree = effectively one worker,
    per the paper's thread-per-subtree assignment, but demand feeding may
    race a pre-materialization worker on the same video).
    """

    def __init__(
        self,
        graph: VideoGraph,
        encoded: bytes,
        cache: Optional[ObjectStore] = None,
        frontier: Optional[Set[str]] = None,
        registry: Optional[OpRegistry] = None,
        anchor_cache: Optional[AnchorCache] = None,
        decoder_wrapper=None,
    ):
        self.graph = graph
        self._encoded = encoded
        self.cache = cache
        self.frontier = frontier or set()
        self.registry = registry or default_registry()
        self.anchor_cache = anchor_cache
        # Optional hook (video_decoder, video_id) -> decoder, used by the
        # fault-injection harness to wrap decoders in failure proxies.
        self.decoder_wrapper = decoder_wrapper
        self.stats = MaterializeStats()
        self._memo: Dict[str, np.ndarray] = {}
        self._decoder: Optional[VideoDecoder] = None
        self._lock = threading.RLock()

    # -- public API ---------------------------------------------------------
    def get(self, key: str) -> np.ndarray:
        """Materialize one node (frames: (1,H,W,3); samples: (T,h,w,C))."""
        with self._lock:
            return self._get_locked(key)

    def materialize_frontier(self) -> int:
        """Compute and persist every frontier node; returns nodes stored."""
        stored = 0
        for key in sorted(self.frontier):
            self.get(key)
            stored += 1
        return stored

    def release_raw_frames(self) -> int:
        """Drop decoded frames from memory (S5.4).

        The decoder survives the release: its anchor cache (byte-budgeted
        on its own) is what makes the *next* sparse access to this video
        cheap, so dropping raw frames no longer forfeits anchor state.
        """
        with self._lock:
            dropped = 0
            for key in list(self._memo):
                if self.graph.nodes[key].kind == "frame":
                    self.stats.bytes_in_memory -= self._memo[key].nbytes
                    del self._memo[key]
                    dropped += 1
            return dropped

    def release_all(self) -> None:
        with self._lock:
            self._memo.clear()
            self.stats.bytes_in_memory = 0
            self._decoder = None

    def in_memory(self, key: str) -> bool:
        with self._lock:
            return key in self._memo

    # -- internals ------------------------------------------------------------
    def _get_locked(self, key: str) -> np.ndarray:
        if key in self._memo:
            # Frames land in the memo in bulk (one decode pass covers the
            # whole wanted set), so a memoized frontier object may not
            # have been persisted yet — do it on first access.
            self._persist_if_frontier(key, self._memo[key])
            return self._memo[key]
        node = self.graph.nodes.get(key)
        if node is None:
            raise KeyError(f"{self.graph.video_id}: unknown node {key!r}")

        array = self._load_cached(key)
        if array is not None:
            self._remember(key, array)
            return array

        array = self._compute(node)
        if key not in self._memo:
            self._remember(key, array)
        self._persist_if_frontier(key, array)
        return array

    def _load_cached(self, key: str) -> Optional[np.ndarray]:
        """Fetch+decode a persisted object; ``None`` means recompute.

        Every failure mode degrades to re-materialization from the
        source video rather than poisoning the batch: a corrupt blob
        (checksum mismatch → already quarantined by the store, or a
        decode failure → evicted here) and a transient I/O error (the
        blob survives; only this read gives up) both report ``None``.
        """
        if self.cache is None or key not in self.cache:
            return None
        try:
            blob = self.cache.get(key)
        except CorruptObjectError:
            # The store quarantined the key; recompute from source.
            self.stats.corrupt_evictions += 1
            self.stats.fallback_rematerializations += 1
            return None
        except TransientStorageError:
            self.stats.transient_errors += 1
            self.stats.fallback_rematerializations += 1
            return None
        if blob is None:
            return None
        try:
            array = decode_array(blob)
        except BlobError:
            # Corrupted cache entry that slipped past the store's CRC
            # (e.g. in-flight corruption): drop it and recompute — the
            # graph can always regenerate.
            self.cache.delete(key)
            self.stats.corrupt_evictions += 1
            self.stats.fallback_rematerializations += 1
            return None
        self.stats.cache_hits += 1
        return array

    def _persist_if_frontier(self, key: str, array: np.ndarray) -> None:
        if self.cache is None or key not in self.frontier or key in self.cache:
            return
        try:
            self.cache.put(key, encode_array(array))
            self.stats.cache_stores += 1
        except StorageFullError:
            # The cache manager is responsible for eviction; if space is
            # exhausted mid-window we keep the object in memory and
            # recompute later rather than fail the pipeline.
            pass
        except TransientStorageError:
            # Flaky write: skip the persist — the object stays in memory
            # and a later access re-attempts the store.
            self.stats.transient_errors += 1

    def _remember(self, key: str, array: np.ndarray) -> None:
        self._memo[key] = array
        self.stats.bytes_in_memory += array.nbytes

    def _compute(self, node: ObjectNode) -> np.ndarray:
        if node.kind == "video":
            raise ValueError("the encoded video is not a materializable array")
        if node.kind == "frame":
            self._decode_wanted()
            if node.key not in self._memo:  # pragma: no cover - defensive
                raise RuntimeError(f"decode did not produce {node.key}")
            return self._memo[node.key]
        if node.kind == "aug":
            assert node.op_args is not None
            parent = self._get_locked(node.parents[0])
            op, params = _op_from_args(self.registry, node.op_args)
            self.stats.count_op(op.name)
            return op.apply(parent, params)
        if node.kind == "sample":
            frames = [self._get_locked(p) for p in node.parents]
            clip = np.concatenate(frames, axis=0)
            for op_args in node.clip_ops:
                op, params = _op_from_args(self.registry, op_args)
                self.stats.count_op(op.name)
                clip = op.apply(clip, params)
            self.stats.count_op("collate")
            return clip
        raise ValueError(f"unknown node kind {node.kind!r}")

    def _decode_wanted(self) -> None:
        """Decode the union of wanted frames, GOP by GOP, and memoize them.

        Frames already persisted in the object cache skip their payload
        reads entirely; the rest are coalesced per GOP and fed to the
        (persistent) decoder one GOP at a time, so anchor-cache reuse is
        priced per keyframe interval and decode stats accumulate as
        deltas — a decoder re-opened after ``release_all`` no longer
        resets the materializer's counters.
        """
        missing = [
            n.frame_index
            for n in self.graph.frames()
            if n.key not in self._memo and n.frame_index is not None
        ]
        if self.cache is not None:
            # Frames already persisted (frontier at frame level) load from
            # cache instead of decode; only truly absent ones decode.
            pending = []
            for index in missing:
                key = f"frame:{self.graph.video_id}:{index}"
                array = self._load_cached(key)
                if array is not None:
                    self._remember(key, array)
                else:
                    pending.append(index)
            missing = pending
        if not missing:
            return
        if self._decoder is None:
            self._decoder = open_decoder(
                self._encoded, anchor_cache=self.anchor_cache
            )
            if self.decoder_wrapper is not None:
                self._decoder = self.decoder_wrapper(
                    self._decoder, self.graph.video_id
                )
        gop = self.graph.metadata.gop
        by_gop: Dict[int, List[int]] = {}
        for index in missing:
            by_gop.setdefault(gop.gop_of(index), []).append(index)
        for gop_id in sorted(by_gop):
            before = self._decoder.stats.frames_decoded
            before_reused = self._decoder.stats.frames_reused_from_anchor_cache
            frames = self._decoder.decode_frames(by_gop[gop_id])
            self.stats.frames_decoded += (
                self._decoder.stats.frames_decoded - before
            )
            self.stats.frames_reused_from_anchor_cache += (
                self._decoder.stats.frames_reused_from_anchor_cache - before_reused
            )
            for index, pixels in frames.items():
                self._remember(
                    f"frame:{self.graph.video_id}:{index}", pixels[np.newaxis, ...]
                )
