"""View types and the Table-1 path scheme.

SAND exposes every stage of the preprocessing pipeline as a *view* — a
virtual object addressed by a unique file path (paper Table 1):

======  =====================================================
View    Path
======  =====================================================
Video   ``/{task_name}/{video_name}.mp4``
Frame   ``/{task_name}/{video_name}/frame{index}``
Aug.    ``/{task_name}/{video_name}/frame{index}/aug{depth}``
View    ``/{task_name}/{epoch}/{iteration}/view``
======  =====================================================

:func:`parse_view_path` and the ``path()`` constructors are exact
inverses, and parsing is unambiguous: the batch-view form is recognized
by its ``/view`` leaf and numeric epoch/iteration components, the video
form by its ``.mp4`` suffix, and frames by their ``frame{index}``
component.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional, Union


class ViewKind(enum.Enum):
    """The four view types of Table 1."""

    VIDEO = "video"
    FRAME = "frame"
    AUG_FRAME = "aug_frame"
    BATCH = "view"


class ViewPathError(ValueError):
    """Raised when a path does not match any Table-1 form."""


_FRAME_RE = re.compile(r"^frame(\d+)$")
_AUG_RE = re.compile(r"^aug(\d+)$")
_INT_RE = re.compile(r"^\d+$")


@dataclass(frozen=True)
class VideoView:
    """``/{task}/{video}.mp4`` — the encoded source video."""

    task: str
    video: str

    kind = ViewKind.VIDEO

    def path(self) -> str:
        return f"/{self.task}/{self.video}.mp4"


@dataclass(frozen=True)
class FrameView:
    """``/{task}/{video}/frame{index}`` — one decoded frame."""

    task: str
    video: str
    index: int

    kind = ViewKind.FRAME

    def path(self) -> str:
        return f"/{self.task}/{self.video}/frame{self.index}"


@dataclass(frozen=True)
class AugFrameView:
    """``/{task}/{video}/frame{index}/aug{depth}`` — an augmented frame.

    ``depth`` counts applied augmentation steps along the pipeline.
    """

    task: str
    video: str
    index: int
    depth: int

    kind = ViewKind.AUG_FRAME

    def path(self) -> str:
        return f"/{self.task}/{self.video}/frame{self.index}/aug{self.depth}"


@dataclass(frozen=True)
class BatchView:
    """``/{task}/{epoch}/{iteration}/view`` — a ready training batch."""

    task: str
    epoch: int
    iteration: int

    kind = ViewKind.BATCH

    def path(self) -> str:
        return f"/{self.task}/{self.epoch}/{self.iteration}/view"


View = Union[VideoView, FrameView, AugFrameView, BatchView]


def _validate_name(name: str, what: str, path: str) -> None:
    if not name or "/" in name:
        raise ViewPathError(f"bad {what} {name!r} in {path!r}")


def parse_view_path(path: str) -> View:
    """Parse a Table-1 path into its typed view.

    >>> parse_view_path("/train/vid_07.mp4")
    VideoView(task='train', video='vid_07')
    >>> parse_view_path("/train/3/120/view")
    BatchView(task='train', epoch=3, iteration=120)
    """
    parts = [p for p in path.split("/") if p]
    if len(parts) < 2:
        raise ViewPathError(f"path too short: {path!r}")
    task = parts[0]
    _validate_name(task, "task name", path)

    if len(parts) == 2 and parts[1].endswith(".mp4"):
        video = parts[1][: -len(".mp4")]
        _validate_name(video, "video name", path)
        return VideoView(task, video)

    if (
        len(parts) == 4
        and parts[3] == "view"
        and _INT_RE.match(parts[1])
        and _INT_RE.match(parts[2])
    ):
        return BatchView(task, int(parts[1]), int(parts[2]))

    if len(parts) == 3:
        match = _FRAME_RE.match(parts[2])
        if match:
            return FrameView(task, parts[1], int(match.group(1)))

    if len(parts) == 4:
        frame_match = _FRAME_RE.match(parts[2])
        aug_match = _AUG_RE.match(parts[3])
        if frame_match and aug_match:
            return AugFrameView(
                task, parts[1], int(frame_match.group(1)), int(aug_match.group(1))
            )

    raise ViewPathError(f"path matches no view form: {path!r}")


def try_parse_view_path(path: str) -> Optional[View]:
    """Like :func:`parse_view_path` but returns None on mismatch."""
    try:
        return parse_view_path(path)
    except ViewPathError:
        return None
