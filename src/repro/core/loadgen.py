"""The standing "millions of users" load generator.

Drives fleets of synthetic trainers against any lease-aware batch
source — a single :class:`~repro.core.service.SandService` or the
sharded :class:`~repro.core.sharding.ShardCoordinator` — and reports
the latency distribution every later PR is judged against.

Each synthetic trainer models one GPU consumer: it requests its task's
batches in order, holds each delivery lease for a simulated GPU step
(``gpu_step_s``), releases it, and immediately demands the next batch.
Demand latency is the wall time from request to lease-in-hand — the
trainer-visible stall the paper's Fig 14 plots.  Latencies, errors, and
throughput aggregate per tenant and fleet-wide (p50/p90/p99/max).

All timing here is observability (reported, never fed back into a
scheduling decision), hence the wall-clock lint pragmas.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.locks import make_lock

DEFAULT_TENANT = "default"


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    if q >= 100:
        return ordered[-1]
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


@dataclass(frozen=True)
class TrainerSpec:
    """One synthetic trainer: who it is and what it consumes."""

    name: str
    tenant: str
    task: str
    epochs: int = 1
    iterations: Optional[int] = None  # None = the task's full epoch
    gpu_step_s: float = 0.0
    start_epoch: int = 0


def make_fleet(
    tenants: Sequence[str],
    trainers_per_tenant: int,
    tasks: Sequence[str],
    epochs: int = 1,
    iterations: Optional[int] = None,
    gpu_step_s: float = 0.0,
) -> List[TrainerSpec]:
    """A uniform fleet: each tenant runs N trainers round-robin on tasks."""
    if not tenants or not tasks:
        raise ValueError("need at least one tenant and one task")
    fleet: List[TrainerSpec] = []
    for t_index, tenant in enumerate(tenants):
        for i in range(trainers_per_tenant):
            task = tasks[(t_index * trainers_per_tenant + i) % len(tasks)]
            fleet.append(
                TrainerSpec(
                    name=f"{tenant}/trainer-{i}",
                    tenant=tenant,
                    task=task,
                    epochs=epochs,
                    iterations=iterations,
                    gpu_step_s=gpu_step_s,
                )
            )
    return fleet


class LoadGenerator:
    """Run a trainer fleet against a lease-aware batch source."""

    def __init__(self, source: Any, trainers: Sequence[TrainerSpec]):
        if not hasattr(source, "get_batch_lease"):
            raise TypeError(
                f"{type(source).__name__} does not expose get_batch_lease"
            )
        if not trainers:
            raise ValueError("need at least one trainer spec")
        self._source = source
        self._trainers = list(trainers)
        # Multi-tenant sources take a tenant keyword; plain services
        # don't — detect once so the fleet drives either unchanged.
        params = inspect.signature(source.get_batch_lease).parameters
        self._tenant_aware = "tenant" in params
        self._lock = make_lock("loadgen.results")
        self._latencies: Dict[str, List[float]] = {}
        self._batches: Dict[str, int] = {}
        self._errors: Dict[str, List[str]] = {}

    # -- one trainer ---------------------------------------------------------
    def _iterations_for(self, spec: TrainerSpec, epoch: int) -> int:
        if spec.iterations is not None:
            return spec.iterations
        return int(self._source.iterations_per_epoch(spec.task, epoch))

    def _run_trainer(self, spec: TrainerSpec) -> None:
        latencies: List[float] = []
        batches = 0
        try:
            for epoch in range(spec.start_epoch, spec.start_epoch + spec.epochs):
                for iteration in range(self._iterations_for(spec, epoch)):
                    started = time.perf_counter()  # sandlint: ignore[wall-clock]
                    if self._tenant_aware:
                        lease, _meta = self._source.get_batch_lease(
                            spec.task, epoch, iteration, tenant=spec.tenant
                        )
                    else:
                        lease, _meta = self._source.get_batch_lease(
                            spec.task, epoch, iteration
                        )
                    latency = time.perf_counter() - started  # sandlint: ignore[wall-clock]
                    try:
                        latencies.append(latency)
                        batches += 1
                        if spec.gpu_step_s > 0:
                            # The simulated GPU step: the trainer holds
                            # the batch while "training" on it.
                            time.sleep(spec.gpu_step_s)
                    finally:
                        lease.release()
        except Exception as exc:  # noqa: BLE001 - the report carries it
            with self._lock:
                self._errors.setdefault(spec.tenant, []).append(
                    f"{spec.name}: {type(exc).__name__}: {exc}"
                )
        finally:
            with self._lock:
                self._latencies.setdefault(spec.tenant, []).extend(latencies)
                self._batches[spec.tenant] = (
                    self._batches.get(spec.tenant, 0) + batches
                )

    # -- the fleet -----------------------------------------------------------
    def run(self, timeout_s: float = 600.0) -> Dict[str, Any]:
        """Run every trainer to completion; returns the fleet report."""
        with self._lock:
            self._latencies.clear()
            self._batches.clear()
            self._errors.clear()
        threads = [
            threading.Thread(
                target=self._run_trainer, args=(spec,), name=f"loadgen-{spec.name}"
            )
            for spec in self._trainers
        ]
        started = time.perf_counter()  # sandlint: ignore[wall-clock]
        for thread in threads:
            thread.start()
        deadline = started + timeout_s
        for thread in threads:
            remaining = max(0.1, deadline - time.perf_counter())  # sandlint: ignore[wall-clock]
            thread.join(timeout=remaining)
        elapsed = time.perf_counter() - started  # sandlint: ignore[wall-clock]
        stuck = [t.name for t in threads if t.is_alive()]
        return self._report(elapsed, stuck)

    def _report(self, elapsed: float, stuck: List[str]) -> Dict[str, Any]:
        with self._lock:
            all_latencies = [
                sample for samples in self._latencies.values() for sample in samples
            ]
            per_tenant = {}
            for tenant in sorted(self._latencies):
                samples = self._latencies[tenant]
                per_tenant[tenant] = {
                    "batches": self._batches.get(tenant, 0),
                    "p50_s": percentile(samples, 50),
                    "p99_s": percentile(samples, 99),
                    "errors": len(self._errors.get(tenant, [])),
                }
            total_batches = sum(self._batches.values())
            error_lines = [
                line for lines in self._errors.values() for line in lines
            ]
            return {
                "trainers": len(self._trainers),
                "tenants": len({s.tenant for s in self._trainers}),
                "batches": total_batches,
                "elapsed_s": elapsed,
                "throughput_batches_per_s": (
                    total_batches / elapsed if elapsed > 0 else 0.0
                ),
                "latency_s": {
                    "p50": percentile(all_latencies, 50),
                    "p90": percentile(all_latencies, 90),
                    "p99": percentile(all_latencies, 99),
                    "max": max(all_latencies) if all_latencies else 0.0,
                },
                "per_tenant": per_tenant,
                "errors": error_lines,
                "stuck_trainers": stuck,
            }
