"""Function-level control-flow graphs over :mod:`ast`.

sandlint's original passes are per-node: they can say "this call is
banned here" but not "this resource is released on *every* path" or
"this lock is held *across* that await".  Those are flow properties, and
this module supplies the substrate: a :class:`ControlFlowGraph` of
:class:`BasicBlock`\\ s per function, built from the AST with explicit
edges for branches, loops, ``try``/``except``/``finally`` routing, and
abrupt exits (``return`` / ``raise`` / ``break`` / ``continue``).

Block contents are a flat list of *events* in execution order:

* simple statements appear as themselves (``ast.Assign``, ``ast.Expr``,
  ``ast.Return``, ...);
* a conditional's test appears as :class:`Branch` in the block that ends
  with it (its successors are the true/false targets);
* a loop iterator appears as :class:`ForIter` in the loop-header block;
* ``with`` bodies are inlined between :class:`WithEnter` /
  :class:`WithExit` markers so dataflow passes see context-manager
  acquire/release as ordinary events.

Exception modeling is the usual lint compromise: explicit ``raise``
statements and the *entry* of a ``try`` body get edges to that try's
handlers (arbitrary calls are not assumed to throw), every abrupt exit
is routed through the enclosing ``finally`` regions innermost-first, and
a shared ``finally`` region fans out to every target that routed through
it.  That over-approximates paths (a ``return`` route can appear to fall
through to the statement after the ``try``) — sound for may-analyses,
documented for must-analyses.

The graph always has one synthetic entry block and one synthetic exit
block; every ``return``, uncaught ``raise``, and normal fall-through
reaches the exit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

__all__ = [
    "BasicBlock",
    "Branch",
    "ControlFlowGraph",
    "ForIter",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "iter_functions",
    "terminates_abruptly",
]


@dataclass(frozen=True)
class Branch:
    """A conditional test ending a block (``if`` / ``while`` guard)."""

    test: ast.expr
    origin: ast.stmt


@dataclass(frozen=True)
class ForIter:
    """A ``for`` loop header: one draw from ``iter`` binding ``target``."""

    iter: ast.expr
    target: ast.expr
    origin: ast.stmt


@dataclass(frozen=True)
class WithEnter:
    """Entry of one ``with`` item (context manager acquired)."""

    item: ast.withitem
    origin: ast.stmt


@dataclass(frozen=True)
class WithExit:
    """Exit of one ``with`` item (context manager released)."""

    item: ast.withitem
    origin: ast.stmt


Event = Union[ast.stmt, Branch, ForIter, WithEnter, WithExit]


@dataclass
class BasicBlock:
    """A straight-line run of events with explicit successor edges."""

    index: int
    events: List[Event] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def add_successor(self, succ: "BasicBlock") -> None:
        if succ.index not in self.successors:
            self.successors.append(succ.index)
        if self.index not in succ.predecessors:
            succ.predecessors.append(self.index)


class ControlFlowGraph:
    """The CFG of one function: blocks, entry/exit, reachability."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    @property
    def is_async(self) -> bool:
        return isinstance(self.func, ast.AsyncFunctionDef)

    def reachable(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        seen = {self.entry.index}
        frontier = [self.entry.index]
        while frontier:
            index = frontier.pop()
            for succ in self.blocks[index].successors:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def reverse_postorder(self) -> List[int]:
        """Reachable block indices in reverse postorder (forward-friendly)."""
        order: List[int] = []
        seen: Set[int] = set()

        def visit(index: int) -> None:
            # Iterative DFS so pathological nesting cannot blow the stack.
            stack: List[Tuple[int, int]] = [(index, 0)]
            seen.add(index)
            while stack:
                node, cursor = stack[-1]
                succs = self.blocks[node].successors
                if cursor < len(succs):
                    stack[-1] = (node, cursor + 1)
                    succ = succs[cursor]
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, 0))
                else:
                    order.append(node)
                    stack.pop()

        visit(self.entry.index)
        order.reverse()
        return order

    def events_in_order(self) -> Iterator[Event]:
        """Every event of every reachable block (analysis convenience)."""
        reachable = self.reachable()
        for block in self.blocks:
            if block.index in reachable:
                yield from block.events


# -- construction -------------------------------------------------------------


@dataclass
class _LoopFrame:
    break_target: BasicBlock
    continue_target: BasicBlock
    finally_depth: int


@dataclass
class _TryFrame:
    handler_entries: List[BasicBlock]
    finally_entry: Optional[BasicBlock]
    # Targets registered for the finally region's fan-out, resolved when
    # the region is built (block indices, deduplicated in order).
    finally_targets: List[BasicBlock] = field(default_factory=list)

    def add_finally_target(self, target: BasicBlock) -> None:
        if self.finally_entry is None:
            return
        if all(t.index != target.index for t in self.finally_targets):
            self.finally_targets.append(target)


class _Builder:
    """One pass over a function body producing its CFG."""

    def __init__(self, func: FunctionNode) -> None:
        self.cfg = ControlFlowGraph(func)
        self.current: Optional[BasicBlock] = self.cfg.entry
        self.loops: List[_LoopFrame] = []
        self.tries: List[_TryFrame] = []

    # -- plumbing -------------------------------------------------------------
    def _emit(self, event: Event) -> None:
        if self.current is None:
            # Dead code after an abrupt exit still gets a block so the
            # events exist (unreachable: no predecessor edges).
            self.current = self.cfg.new_block()
        self.current.events.append(event)

    def _jump(self, target: BasicBlock) -> None:
        """End the current block with an edge to ``target``."""
        if self.current is not None:
            self.current.add_successor(target)
        self.current = None

    def _route_through_finallys(self, depth: int, target: BasicBlock) -> None:
        """Edge from the current block to ``target`` via every ``finally``
        region strictly above ``depth`` on the try stack, innermost first."""
        chain = [
            frame
            for frame in self.tries[depth:]
            if frame.finally_entry is not None
        ]
        if not chain:
            self._jump(target)
            return
        chain.reverse()  # innermost first
        first = chain[0].finally_entry
        assert first is not None
        self._jump(first)
        for inner, outer in zip(chain, chain[1:]):
            assert outer.finally_entry is not None
            inner.add_finally_target(outer.finally_entry)
        chain[-1].add_finally_target(target)

    def _raise_targets(self) -> List[BasicBlock]:
        """Where an explicit ``raise`` can land: the innermost enclosing
        handlers, if any (the finally routing is applied separately)."""
        for frame in reversed(self.tries):
            if frame.handler_entries:
                return frame.handler_entries
        return []

    # -- statement dispatch ---------------------------------------------------
    def build(self) -> ControlFlowGraph:
        func = self.cfg.func
        self.visit_body(func.body)
        if self.current is not None:
            self._jump(self.cfg.exit)
        return self.cfg

    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._visit_if(node)
        elif isinstance(node, (ast.While,)):
            self._visit_while(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit_for(node)
        elif isinstance(node, ast.Try):
            self._visit_try(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
        elif isinstance(node, ast.Return):
            self._emit(node)
            self._route_through_finallys(0, self.cfg.exit)
        elif isinstance(node, ast.Raise):
            self._emit(node)
            handlers = self._raise_targets()
            if handlers:
                for handler in handlers:
                    if self.current is not None:
                        self.current.add_successor(handler)
                self.current = None
            else:
                self._route_through_finallys(0, self.cfg.exit)
        elif isinstance(node, ast.Break):
            self._emit(node)
            if self.loops:
                frame = self.loops[-1]
                self._route_through_finallys(
                    frame.finally_depth, frame.break_target
                )
            else:  # malformed code; treat as function exit
                self._route_through_finallys(0, self.cfg.exit)
        elif isinstance(node, ast.Continue):
            self._emit(node)
            if self.loops:
                frame = self.loops[-1]
                self._route_through_finallys(
                    frame.finally_depth, frame.continue_target
                )
            else:
                self._route_through_finallys(0, self.cfg.exit)
        elif isinstance(node, ast.Match):
            self._visit_match(node)
        else:
            # Simple statements — including nested function/class
            # definitions, which are opaque events here (each nested
            # function gets its own CFG via iter_functions).
            self._emit(node)

    # -- compound statements --------------------------------------------------
    def _visit_if(self, node: ast.If) -> None:
        self._emit(Branch(node.test, node))
        test_block = self.current
        assert test_block is not None
        after = self.cfg.new_block()
        then_entry = self.cfg.new_block()
        test_block.add_successor(then_entry)
        self.current = then_entry
        self.visit_body(node.body)
        if self.current is not None:
            self._jump(after)
        if node.orelse:
            else_entry = self.cfg.new_block()
            test_block.add_successor(else_entry)
            self.current = else_entry
            self.visit_body(node.orelse)
            if self.current is not None:
                self._jump(after)
        else:
            test_block.add_successor(after)
        self.current = after

    def _visit_while(self, node: ast.While) -> None:
        header = self.cfg.new_block()
        after = self.cfg.new_block()
        self._jump(header)
        header.events.append(Branch(node.test, node))
        body_entry = self.cfg.new_block()
        header.add_successor(body_entry)
        self.loops.append(_LoopFrame(after, header, len(self.tries)))
        self.current = body_entry
        self.visit_body(node.body)
        if self.current is not None:
            self._jump(header)
        self.loops.pop()
        if node.orelse:
            else_entry = self.cfg.new_block()
            header.add_successor(else_entry)
            self.current = else_entry
            self.visit_body(node.orelse)
            if self.current is not None:
                self._jump(after)
        else:
            header.add_successor(after)
        self.current = after

    def _visit_for(self, node: Union[ast.For, ast.AsyncFor]) -> None:
        header = self.cfg.new_block()
        after = self.cfg.new_block()
        self._jump(header)
        header.events.append(ForIter(node.iter, node.target, node))
        body_entry = self.cfg.new_block()
        header.add_successor(body_entry)
        self.loops.append(_LoopFrame(after, header, len(self.tries)))
        self.current = body_entry
        self.visit_body(node.body)
        if self.current is not None:
            self._jump(header)
        self.loops.pop()
        if node.orelse:
            else_entry = self.cfg.new_block()
            header.add_successor(else_entry)
            self.current = else_entry
            self.visit_body(node.orelse)
            if self.current is not None:
                self._jump(after)
        else:
            header.add_successor(after)
        self.current = after

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        for item in node.items:
            self._emit(WithEnter(item, node))
        self.visit_body(node.body)
        for item in reversed(node.items):
            self._emit(WithExit(item, node))

    def _visit_try(self, node: ast.Try) -> None:
        after = self.cfg.new_block()
        finally_entry = self.cfg.new_block() if node.finalbody else None
        handler_entries = [self.cfg.new_block() for _ in node.handlers]
        frame = _TryFrame(handler_entries, finally_entry)

        body_entry = self.cfg.new_block()
        self._jump(body_entry)
        # An exception may fire before the first body statement runs.
        for handler_entry in handler_entries:
            body_entry.add_successor(handler_entry)
        self.tries.append(frame)
        self.current = body_entry
        self.visit_body(node.body)
        body_end = self.current
        self.tries.pop()

        # Normal completion: body -> orelse -> finally -> after.
        if body_end is not None:
            self.current = body_end
            if node.orelse:
                orelse_entry = self.cfg.new_block()
                self._jump(orelse_entry)
                self.current = orelse_entry
                self.visit_body(node.orelse)
            if self.current is not None:
                if finally_entry is not None:
                    self._jump(finally_entry)
                    frame.add_finally_target(after)
                else:
                    self._jump(after)

        # Handlers run with the try's own handlers out of scope (an
        # exception raised inside a handler propagates outward), but the
        # finally still applies.
        for handler, handler_entry in zip(node.handlers, handler_entries):
            if finally_entry is not None:
                self.tries.append(_TryFrame([], finally_entry, frame.finally_targets))
            self.current = handler_entry
            self.visit_body(handler.body)
            if finally_entry is not None:
                self.tries.pop()
            if self.current is not None:
                if finally_entry is not None:
                    self._jump(finally_entry)
                    frame.add_finally_target(after)
                else:
                    self._jump(after)

        # The finally region is built once; it fans out to every target
        # that routed through it (the after-block, the exit, loop
        # headers).  An uncaught exception also flows body -> finally ->
        # exit when there are no handlers to absorb it.
        if finally_entry is not None:
            if not handler_entries:
                body_entry.add_successor(finally_entry)
                frame.add_finally_target(self.cfg.exit)
            self.current = finally_entry
            self.visit_body(node.finalbody)
            finally_end = self.current
            if finally_end is not None:
                if not frame.finally_targets:
                    frame.add_finally_target(after)
                for target in frame.finally_targets:
                    finally_end.add_successor(target)
                self.current = None
        self.current = after

    def _visit_match(self, node: ast.Match) -> None:
        # Each case is a branch off the subject block; the subject
        # expression itself is kept as a Branch event so dataflow sees
        # its uses.
        self._emit(Branch(node.subject, node))
        subject_block = self.current
        assert subject_block is not None
        after = self.cfg.new_block()
        saw_wildcard = False
        for case in node.cases:
            case_entry = self.cfg.new_block()
            subject_block.add_successor(case_entry)
            self.current = case_entry
            self.visit_body(case.body)
            if self.current is not None:
                self._jump(after)
            if isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                saw_wildcard = True
        if not saw_wildcard:
            subject_block.add_successor(after)
        self.current = after


def build_cfg(func: FunctionNode) -> ControlFlowGraph:
    """The control-flow graph of one ``def`` / ``async def``."""
    return _Builder(func).build()


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every function in ``tree`` (nested ones included), outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def terminates_abruptly(body: Sequence[ast.stmt]) -> bool:
    """Does ``body`` always leave its region (return/raise/break/continue)?

    A shallow structural check used by dispatch-shape analysis: the last
    statement decides, recursing into ``if``/``else`` pairs.
    """
    if not body:
        return False
    last = body[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
        return True
    if isinstance(last, ast.If) and last.orelse:
        return terminates_abruptly(last.body) and terminates_abruptly(last.orelse)
    if isinstance(last, ast.Try):
        branches = [last.body if not last.orelse else last.orelse]
        branches.extend(handler.body for handler in last.handlers)
        return all(terminates_abruptly(branch) for branch in branches)
    return False
