"""Correctness tooling for SAND: static analysis + runtime sanitizers.

Two halves, one goal — enforce the invariants the differential test
suite can only spot-check:

* **sandlint** (static): an AST lint engine with a pass registry and
  per-path policy.  Per-node passes (``passes``) guard determinism
  (unseeded RNGs, wall-clock reads), zero-copy aliasing (writes through
  decoder / anchor-cache results), graph-key purity, lock discipline,
  fault-site registration, and the pickle-free delivery path;
  flow-sensitive passes (``flowpasses``, built on the ``cfg`` +
  ``dataflow`` framework) guard lease/handle lifecycle (released on
  every path), blocking calls reachable in async bodies, locks held
  across ``await``, and wire-dispatch exhaustiveness.  Run it as
  ``python -m repro.analysis src/``; suppress a deliberate exception
  inline with ``# sandlint: ignore[<pass-id>]``.  Catalog:
  ``docs/ANALYSIS.md``.
* **Runtime sanitizers** (opt-in via ``SAND_SANITIZERS=1``; on in CI):
  an instrumented lock wrapper that fails on lock-order inversion, CRC
  sentinels detecting write-after-share on copy-elision buffers,
  raw-frame leak checks, and an event-loop stall watchdog
  (``EventLoopStallMonitor``) — all reported through ``EngineStats``.

This ``__init__`` exports only the stdlib-light runtime surface (locks,
sanitizers); the lint engine is imported lazily so the blessed lock
wrapper can be imported from anywhere — including modules the lint
passes themselves inspect — without cycles.
"""

from typing import Any

from repro.analysis.locks import (
    LOCK_MONITOR,
    AbstractLock,
    LockOrderError,
    LockOrderMonitor,
    SanitizedLock,
    make_lock,
    make_rlock,
    sanitizers_enabled,
    set_sanitizers,
)
from repro.analysis.sanitizers import (
    BufferSanitizer,
    EventLoopStallMonitor,
    SanitizerReport,
    buffer_sanitizer,
    collect_report,
    reset_sanitizers,
)

_LINT_EXPORTS = {
    "Finding": ("repro.analysis.findings", "Finding"),
    "render": ("repro.analysis.findings", "render"),
    "LintPass": ("repro.analysis.lint", "LintPass"),
    "Policy": ("repro.analysis.lint", "Policy"),
    "PathRule": ("repro.analysis.lint", "PathRule"),
    "register_pass": ("repro.analysis.lint", "register_pass"),
    "default_passes": ("repro.analysis.lint", "default_passes"),
    "default_policy": ("repro.analysis.lint", "default_policy"),
    "lint_source": ("repro.analysis.lint", "lint_source"),
    "lint_file": ("repro.analysis.lint", "lint_file"),
    "lint_paths": ("repro.analysis.lint", "lint_paths"),
}


def __getattr__(name: str) -> Any:
    entry = _LINT_EXPORTS.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(entry[0])
    return getattr(module, entry[1])


__all__ = [
    "AbstractLock",
    "BufferSanitizer",
    "EventLoopStallMonitor",
    "LOCK_MONITOR",
    "LockOrderError",
    "LockOrderMonitor",
    "SanitizedLock",
    "SanitizerReport",
    "buffer_sanitizer",
    "collect_report",
    "make_lock",
    "make_rlock",
    "reset_sanitizers",
    "sanitizers_enabled",
    "set_sanitizers",
    # lazy lint surface
    "Finding",
    "render",
    "LintPass",
    "Policy",
    "PathRule",
    "register_pass",
    "default_passes",
    "default_policy",
    "lint_source",
    "lint_file",
    "lint_paths",
]
