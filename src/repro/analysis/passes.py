"""The shipped sandlint passes.

Each pass guards one invariant the test suite can only spot-check:

========================  ====================================================
``unseeded-rng``          RNG construction/use without an explicit seed inside
                          deterministic modules (byte-identical materialization
                          is a function of seeds alone)
``wall-clock``            wall-clock reads inside deterministic modules
``shared-buffer-write``   in-place writes through names bound from decoder /
                          anchor-cache results (zero-copy sharing means those
                          bytes are aliased by the cache and fused epilogues)
``impure-key``            unhashable / identity-keyed values flowing into
                          ``stable_params_key`` (graph keys must be pure
                          content keys or view-graph merging is corrupted)
``raw-lock``              raw ``threading`` lock construction outside the
                          blessed wrapper (lock-order sanitizing needs every
                          lock to be named and instrumented)
``unregistered-fault-site``  fault-site string literals not registered in
                          ``repro.faults.schedule`` (the schedule can only
                          replay sites it knows about)
``no-unpooled-send``      payload copies or pickling on the zero-copy
                          delivery path (``bytes(...)``, ``.tobytes()``,
                          ``pickle``/``marshal`` inside the wire/dataplane
                          modules defeat pooled memoryview sends)
========================  ====================================================

These are the *per-node* passes (single-statement judgements).  The
flow-sensitive passes — must-release, blocking-in-async,
lock-across-await, wire-exhaustiveness — live in
``repro.analysis.flowpasses`` on top of the ``cfg``/``dataflow``
framework.  The full catalog is ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.lint import LintPass, register_pass

# -- shared helpers ----------------------------------------------------------


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted module/attribute paths.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``from threading
    import Lock as L`` → ``{"L": "threading.Lock"}``.  Only top-level
    and function-level imports are honored — good enough for lint.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # `import numpy.random` binds `numpy`.
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _canonical(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute chain, or None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _last_segment(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# -- determinism -------------------------------------------------------------

# Constructors that are fine *when seeded* (≥1 positional/keyword arg).
_SEEDABLE = {
    "random.Random",
    "random.SystemRandom",  # flagged unconditionally below
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
}
# random-module calls that are not draws at all.
_RNG_EXEMPT = {"random.seed", "random.getstate", "random.setstate"}

# Entropy/identity sources that make a "seeded" RNG nondeterministic
# anyway (the wall-clock set below joins these at module init).
_ENTROPY_SOURCES = {
    "os.urandom",
    "os.getrandom",
    "os.getpid",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "secrets.randbelow",
}


def _entropy_call(expr: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of the first entropy/clock call inside ``expr``."""
    for sub in ast.walk(expr):
        if not isinstance(sub, ast.Call):
            continue
        sub_target = _canonical(sub.func, aliases)
        if sub_target in _ENTROPY_SOURCES or sub_target in _WALL_CLOCK:
            return sub_target
    return None


@register_pass
class UnseededRngPass(LintPass):
    pass_id = "unseeded-rng"
    description = (
        "unseeded (or entropy-seeded) random.* / np.random.* use inside "
        "deterministic modules"
    )

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        aliases = _collect_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = _canonical(node.func, aliases)
            if target is None:
                continue
            if target in _RNG_EXEMPT:
                continue
            if target == "random.SystemRandom":
                yield self.finding(
                    path, node, "SystemRandom is unseedable; derive from a seed"
                )
                continue
            if target in _SEEDABLE:
                if not node.args and not node.keywords:
                    yield self.finding(
                        path,
                        node,
                        f"{target}() without a seed; pass an explicit seed",
                    )
                    continue
                # A seed that is itself drawn from the clock or process
                # entropy is determinism theater: flag the constructor.
                seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
                for expr in seed_exprs:
                    entropy = _entropy_call(expr, aliases)
                    if entropy is not None:
                        yield self.finding(
                            path,
                            node,
                            f"{target}() seeded from {entropy}(); derive "
                            "the seed from the run seed instead",
                        )
                        break
                continue
            if target.startswith("random.") or target.startswith("numpy.random."):
                yield self.finding(
                    path,
                    node,
                    f"{target}() draws from global RNG state; "
                    "use a seeded generator instance",
                )


_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_pass
class WallClockPass(LintPass):
    pass_id = "wall-clock"
    description = "wall-clock reads inside deterministic modules"

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        aliases = _collect_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = _canonical(node.func, aliases)
            if target in _WALL_CLOCK:
                yield self.finding(
                    path,
                    node,
                    f"{target}() reads the clock in a deterministic module; "
                    "thread timestamps in from the caller",
                )


# -- aliasing ----------------------------------------------------------------

# Call attribute names whose results are shared zero-copy buffers: the
# decode family publishes into / reads from the anchor cache, and a
# snapshot *is* the cache's contents.
_TAINT_CALL_PREFIXES = ("decode_",)
_TAINT_CALL_NAMES = {"snapshot"}
# ndarray methods that mutate the receiver.
_MUTATING_METHODS = {"fill", "sort", "resize", "put", "partition", "setfield", "byteswap"}


def _taints(call: ast.Call) -> bool:
    name = _last_segment(call.func)
    if name is None:
        return False
    return name in _TAINT_CALL_NAMES or any(
        name.startswith(p) for p in _TAINT_CALL_PREFIXES
    )


def _base_name(node: ast.AST) -> Optional[str]:
    """The root Name of a (possibly nested) subscript chain."""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


class _ScopeAliasing:
    """Forward-walks one scope tracking names aliased to shared buffers."""

    def __init__(self, lint_pass: LintPass, path: str) -> None:
        self.lint_pass = lint_pass
        self.path = path
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []

    # -- taint tracking ------------------------------------------------------
    def _value_tainted(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Call):
            return _taints(value)
        name = _base_name(value)
        return name is not None and name in self.tainted

    def _bind(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)

    def _flag(self, node: ast.AST, name: str, what: str) -> None:
        self.findings.append(
            self.lint_pass.finding(
                self.path,
                node,
                f"{what} through {name!r}, which aliases a shared "
                "decoded/anchor-cache buffer; copy before mutating",
            )
        )

    # -- statement walk ------------------------------------------------------
    def visit_block(self, statements: List[ast.stmt]) -> None:
        for statement in statements:
            self.visit_stmt(statement)

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested scopes are analyzed separately
        if isinstance(node, ast.Assign):
            self._check_expr(node.value)
            tainted = self._value_tainted(node.value)
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = _base_name(target)
                    if name in self.tainted:
                        self._flag(node, name, "item assignment")
                else:
                    self._bind(target, tainted)
            return
        if isinstance(node, ast.AugAssign):
            self._check_expr(node.value)
            name = _base_name(node.target)
            if name in self.tainted:
                self._flag(node, name, "augmented assignment")
            return
        if isinstance(node, ast.For):
            self._check_expr(node.iter)
            iter_tainted = self._value_tainted(node.iter) or (
                isinstance(node.iter, ast.Call)
                and _last_segment(node.iter.func) in {"items", "values"}
                and self._value_tainted(node.iter.func.value)  # type: ignore[union-attr]
            )
            if isinstance(node.target, ast.Name):
                self._bind(node.target, iter_tainted)
            elif isinstance(node.target, ast.Tuple) and node.target.elts:
                # `for k, v in frames.items()`: the value aliases.
                self._bind(node.target.elts[-1], iter_tainted)
            self.visit_block(node.body)
            self.visit_block(node.orelse)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._check_expr(node.test)
            self.visit_block(node.body)
            self.visit_block(node.orelse)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._check_expr(item.context_expr)
            self.visit_block(node.body)
            return
        if isinstance(node, ast.Try):
            self.visit_block(node.body)
            for handler in node.handlers:
                self.visit_block(handler.body)
            self.visit_block(node.orelse)
            self.visit_block(node.finalbody)
            return
        if isinstance(node, ast.Expr):
            self._check_expr(node.value)
            return
        if isinstance(node, ast.Return) and node.value is not None:
            self._check_expr(node.value)

    def _check_expr(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            method = _last_segment(sub.func)
            if (
                method in _MUTATING_METHODS
                and isinstance(sub.func, ast.Attribute)
            ):
                name = _base_name(sub.func.value)
                if name in self.tainted:
                    self._flag(sub, name, f".{method}() call")
            elif method == "copyto" and sub.args:
                name = _base_name(sub.args[0])
                if name in self.tainted:
                    self._flag(sub, name, "np.copyto destination")


@register_pass
class SharedBufferWritePass(LintPass):
    pass_id = "shared-buffer-write"
    description = "in-place writes to decoder / anchor-cache result arrays"

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        scopes: List[List[ast.stmt]] = [tree.body]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            walker = _ScopeAliasing(self, path)
            walker.visit_block(body)
            yield from walker.findings


# -- key purity --------------------------------------------------------------

_IMPURE_CALLS = {"id", "object", "hash"}


@register_pass
class ImpureKeyPass(LintPass):
    pass_id = "impure-key"
    description = "impure/unordered inputs to stable_params_key graph keys"

    def _impurity(self, arg: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                return sub, "a lambda has no stable content key"
            if isinstance(sub, (ast.Set, ast.SetComp)):
                return sub, "set iteration order is not canonical"
            if isinstance(sub, ast.GeneratorExp):
                return sub, "a generator is consumed, not keyed"
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in _IMPURE_CALLS
            ):
                return sub, (
                    f"{sub.func.id}() keys by object identity, which differs "
                    "across processes and runs"
                )
        return None

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _last_segment(node.func) != "stable_params_key":
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                found = self._impurity(arg)
                if found is not None:
                    culprit, why = found
                    yield self.finding(
                        path,
                        culprit,
                        f"impure value in stable_params_key input: {why}",
                    )


# -- lock discipline ---------------------------------------------------------

_RAW_LOCKS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}


@register_pass
class RawLockPass(LintPass):
    pass_id = "raw-lock"
    description = "raw threading lock construction outside the blessed wrapper"

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        aliases = _collect_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = _canonical(node.func, aliases)
            if target in _RAW_LOCKS:
                yield self.finding(
                    path,
                    node,
                    f"{target}() bypasses lock-order sanitizing; use "
                    "repro.analysis.locks.make_lock/make_rlock",
                )


# -- fault sites -------------------------------------------------------------


@register_pass
class FaultSitePass(LintPass):
    pass_id = "unregistered-fault-site"
    description = "fault-site literals missing from repro.faults.schedule"

    def _known_sites(self) -> Optional[Set[str]]:
        # Imported lazily: the lint engine must stay loadable even if the
        # faults package (or its storage deps) cannot import.
        try:
            from repro.faults.schedule import KNOWN_SITES
        except Exception:  # pragma: no cover - defensive
            return None
        return set(KNOWN_SITES)

    def _site_literals(self, node: ast.Call) -> Iterator[Tuple[ast.AST, str]]:
        name = _last_segment(node.func)
        if name == "FaultSpec":
            for keyword in node.keywords:
                if keyword.arg == "site" and isinstance(keyword.value, ast.Constant):
                    if isinstance(keyword.value.value, str):
                        yield keyword.value, keyword.value.value
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                if isinstance(node.args[1].value, str):
                    yield node.args[1], node.args[1].value
        elif name in {"apply", "draw"} and isinstance(node.func, ast.Attribute):
            owner = _last_segment(node.func.value)
            if owner in {"schedule", "fault_schedule"} and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    yield first, first.value

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        known = self._known_sites()
        if known is None:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for literal, site in self._site_literals(node):
                if site not in known:
                    yield self.finding(
                        path,
                        literal,
                        f"fault site {site!r} is not registered in "
                        "repro.faults.schedule (KNOWN_SITES / register_site)",
                    )


# -- zero-copy delivery ------------------------------------------------------

# Serialization entry points that always materialize an owned copy of
# the payload.  Pickle is additionally an isolation hazard: the data
# plane promises trainers a language-agnostic, pickle-free wire format.
_COPYING_SERIALIZERS = {
    "pickle.dumps",
    "pickle.dump",
    "pickle.loads",
    "pickle.load",
    "marshal.dumps",
    "marshal.dump",
    "marshal.loads",
    "marshal.load",
}


@register_pass
class UnpooledSendPass(LintPass):
    pass_id = "no-unpooled-send"
    description = "payload copies or pickling on the zero-copy delivery path"

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        aliases = _collect_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = _canonical(node.func, aliases)
            if target == "bytes" and (node.args or node.keywords):
                yield self.finding(
                    path,
                    node,
                    "bytes(...) copies the payload into an owned buffer; "
                    "send a memoryview of the pooled buffer instead",
                )
            elif target in _COPYING_SERIALIZERS:
                yield self.finding(
                    path,
                    node,
                    f"{target}() on the delivery path: the wire format is "
                    "pickle-free by contract (raw descriptor + buffer)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "tobytes"
            ):
                yield self.finding(
                    path,
                    node,
                    ".tobytes() materializes a copy of the array; use "
                    'memoryview(array).cast("B") for zero-copy sends',
                )
