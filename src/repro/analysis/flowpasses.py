"""Flow-sensitive sandlint passes: CFG + dataflow powered invariants.

The per-node passes in :mod:`repro.analysis.passes` judge one statement
at a time.  The invariants here are *path* properties — they need the
:mod:`repro.analysis.cfg` control-flow graph and the
:mod:`repro.analysis.dataflow` fixpoint solver:

========================  ====================================================
``must-release``          a pooled :class:`BatchLease` / lock / file handle
                          acquired on some path but not released, closed,
                          detached, or ownership-transferred on *every* path
                          to the function exit (the static twin of the data
                          plane's runtime lease-leak gate)
``blocking-in-async``     calls that block the thread (``time.sleep``, raw
                          socket ops, ``Lock.acquire``, direct file I/O)
                          reachable inside ``async def`` bodies on the event
                          loop's serving path
``lock-across-await``     a blessed ``make_lock()`` lock held over an
                          ``await`` — every other task on the loop then
                          contends with arbitrary suspension time
``wire-exhaustiveness``   an ``if``/``match`` dispatch over
                          ``wire.FrameType`` that covers only a subset of the
                          protocol's variants with no explicit default: the
                          next protocol revision would be silently dropped
========================  ====================================================

Ownership transfer (``must-release``) is deliberately conservative: a
resource that is returned, yielded, stored into a container/attribute,
aliased, or passed to another call *escapes* and is the recipient's
problem; only a handle that provably stays local to the function must be
closed on every path.  Method calls *on* the resource (``f.read()``,
``lease.nbytes``) are uses, not escapes — the classic
``f = open(p); return f.read()`` leak is exactly what this pass exists
to catch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.cfg import (
    BasicBlock,
    Branch,
    ControlFlowGraph,
    Event,
    ForIter,
    WithEnter,
    WithExit,
    build_cfg,
    iter_functions,
    terminates_abruptly,
)
from repro.analysis.dataflow import MapLattice, SetUnionLattice, solve_forward
from repro.analysis.findings import Finding
from repro.analysis.lint import LintPass, register_pass
from repro.analysis.passes import _canonical, _collect_aliases, _last_segment

Aliases = Dict[str, str]


class FlowPass(LintPass):
    """A lint pass that analyzes one function CFG at a time.

    ``run`` keeps the engine-facing :class:`LintPass` contract; the
    subclass hook is :meth:`check_function`, which receives the built
    CFG plus the module's import-alias map.
    """

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        aliases = _collect_aliases(tree)
        for func in iter_functions(tree):
            cfg = build_cfg(func)
            yield from self.check_function(cfg, aliases, path)

    def check_function(
        self, cfg: ControlFlowGraph, aliases: Aliases, path: str
    ) -> Iterator[Finding]:
        raise NotImplementedError


# -- shared helpers ----------------------------------------------------------

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    scopes: what executes *in this frame* is what flow passes judge."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _NESTED_SCOPES):
                continue
            stack.append(child)


def _event_exprs(event: Event) -> List[ast.AST]:
    """The AST payload(s) of one CFG event, for scanning."""
    if isinstance(event, Branch):
        return [event.test]
    if isinstance(event, ForIter):
        return [event.iter, event.target]
    if isinstance(event, (WithEnter, WithExit)):
        return [event.item.context_expr]
    if isinstance(event, _NESTED_SCOPES):
        return []  # opaque: nested scopes get their own CFG
    return [event]


def _calls_in(event: Event) -> Iterator[ast.Call]:
    for root in _event_exprs(event):
        for node in _walk_shallow(root):
            if isinstance(node, ast.Call):
                yield node


# -- must-release ------------------------------------------------------------

# States a tracked resource can be in along a path.
_OPEN = "open"
_CLOSED = "closed"
_ESCAPED = "escaped"

_RELEASE_METHODS = {"close", "release", "detach", "shutdown"}
_ACQUIRE_METHODS = {"acquire", "adopt"}
_OPEN_CALLS = {"open", "io.open", "os.fdopen"}


@dataclass
class _Resource:
    key: str
    node: ast.AST  # acquisition site, for the finding location
    what: str  # human label ("delivery lease", "file handle", "lock")
    name: Optional[str]  # bound local name, if any
    receiver: Optional[str]  # dump of `x` in `x.acquire(...)`, if any


def _receiver_dump(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return ast.dump(call.func.value)
    return None


def _acquisition(call: ast.Call, aliases: Aliases) -> Optional[str]:
    """A human label if ``call`` acquires a trackable resource."""
    target = _canonical(call.func, aliases)
    if target in _OPEN_CALLS:
        return "file handle"
    if isinstance(call.func, ast.Attribute) and call.func.attr in _ACQUIRE_METHODS:
        return "lease/lock"
    return None


class _ReleaseScan:
    """Per-event effect extraction for the must-release transfer."""

    def __init__(self, resources: List[_Resource]) -> None:
        self.by_name = {r.name: r for r in resources if r.name is not None}
        self.by_receiver: Dict[str, List[_Resource]] = {}
        for resource in resources:
            if resource.receiver is not None:
                self.by_receiver.setdefault(resource.receiver, []).append(resource)

    def effects(self, event: Event) -> Dict[str, FrozenSet[str]]:
        out: Dict[str, FrozenSet[str]] = {}

        def mark(resource: _Resource, state: str) -> None:
            have = out.get(resource.key, frozenset())
            out[resource.key] = have | {state}

        released: Set[str] = set()
        for call in _calls_in(event):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _RELEASE_METHODS
            ):
                receiver = call.func.value
                if isinstance(receiver, ast.Name) and receiver.id in self.by_name:
                    resource = self.by_name[receiver.id]
                    mark(resource, _CLOSED)
                    released.add(resource.key)
                for resource in self.by_receiver.get(ast.dump(receiver), ()):
                    mark(resource, _CLOSED)
                    released.add(resource.key)
        for name in self._escaping_names(event):
            resource = self.by_name.get(name)
            if resource is not None and resource.key not in released:
                mark(resource, _ESCAPED)
        if isinstance(event, WithEnter):
            # `with lease:` / `with handle:` — the context manager owns
            # the release from here on.
            expr = event.item.context_expr
            if isinstance(expr, ast.Name) and expr.id in self.by_name:
                mark(self.by_name[expr.id], _CLOSED)
        return out

    def _escaping_names(self, event: Event) -> Set[str]:
        """Tracked names leaving this function's custody in ``event``."""
        escaping: Set[str] = set()
        if not self.by_name:
            return escaping

        def note(node: ast.AST) -> None:
            for sub in _walk_shallow(node):
                if isinstance(sub, ast.Name) and sub.id in self.by_name:
                    escaping.add(sub.id)

        def note_aliasing(value: ast.AST) -> None:
            # A bare name (or a name directly inside a container
            # literal) on an RHS re-homes the handle; `x.attr` / `x[i]`
            # reads do not.
            if isinstance(value, ast.Name) and value.id in self.by_name:
                escaping.add(value.id)
            elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                for element in value.elts:
                    note_aliasing(element)
            elif isinstance(value, ast.Dict):
                for sub in list(value.keys) + list(value.values):
                    if sub is not None:
                        note_aliasing(sub)
            elif isinstance(value, ast.Starred):
                note_aliasing(value.value)
            elif isinstance(value, (ast.IfExp,)):
                note_aliasing(value.body)
                note_aliasing(value.orelse)

        for root in _event_exprs(event):
            for sub in _walk_shallow(root):
                if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                    if sub.value is not None:
                        note(sub.value)
                elif isinstance(sub, ast.Await):
                    note(sub.value)
                elif isinstance(sub, ast.Call):
                    for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                        note(arg)
                elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    if sub.value is not None:
                        note_aliasing(sub.value)
                elif isinstance(sub, ast.NamedExpr):
                    note_aliasing(sub.value)
        return escaping


@register_pass
class MustReleasePass(FlowPass):
    pass_id = "must-release"
    description = (
        "a lease/lock/file handle acquired on some path but not released "
        "on every path to the function exit"
    )

    def check_function(
        self, cfg: ControlFlowGraph, aliases: Aliases, path: str
    ) -> Iterator[Finding]:
        resources = self._discover(cfg, aliases)
        if not resources:
            return
        scan = _ReleaseScan(resources)
        acquire_sites = {id(r.node): r for r in resources}
        lattice: MapLattice[str, FrozenSet[str]] = MapLattice(SetUnionLattice())

        def transfer(
            block: BasicBlock, fact: Mapping[str, FrozenSet[str]]
        ) -> Mapping[str, FrozenSet[str]]:
            state = dict(fact)
            for event in block.events:
                for key, flags in scan.effects(event).items():
                    state[key] = flags  # strong update along this path
                site = self._acquire_in(event)
                if site is not None and id(site) in acquire_sites:
                    state[acquire_sites[id(site)].key] = frozenset({_OPEN})
            return state

        facts = solve_forward(cfg, lattice, transfer, lattice.bottom())
        exit_facts = facts.get(cfg.exit.index)
        if exit_facts is None:  # exit unreachable (infinite loop)
            return
        at_exit = exit_facts[0]
        for resource in resources:
            if _OPEN in at_exit.get(resource.key, frozenset()):
                yield self.finding(
                    path,
                    resource.node,
                    f"{resource.what} acquired here may never be released: "
                    "some path to the function exit skips "
                    "release()/close()/detach(); release in a finally "
                    "block or transfer ownership explicitly",
                )

    @staticmethod
    def _acquire_in(event: Event) -> Optional[ast.AST]:
        """The acquisition call of ``event``, if it is one."""
        if isinstance(event, ast.Assign) and isinstance(event.value, ast.Call):
            return event.value
        if isinstance(event, ast.Expr) and isinstance(event.value, ast.Call):
            return event.value
        return None

    def _discover(
        self, cfg: ControlFlowGraph, aliases: Aliases
    ) -> List[_Resource]:
        resources: Dict[str, _Resource] = {}
        for event in cfg.events_in_order():
            if isinstance(event, ast.Assign) and isinstance(event.value, ast.Call):
                what = _acquisition(event.value, aliases)
                if what is None or len(event.targets) != 1:
                    continue
                target = event.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                key = f"name:{target.id}"
                if key not in resources:
                    label = (
                        "file handle"
                        if what == "file handle"
                        else f"lease {target.id!r}"
                    )
                    resources[key] = _Resource(
                        key=key,
                        node=event.value,
                        what=label,
                        name=target.id,
                        receiver=_receiver_dump(event.value),
                    )
            elif isinstance(event, ast.Expr) and isinstance(event.value, ast.Call):
                call = event.value
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "acquire"
                ):
                    receiver = ast.dump(call.func.value)
                    key = f"recv:{receiver}"
                    if key not in resources:
                        resources[key] = _Resource(
                            key=key,
                            node=call,
                            what=f"lock {ast.unparse(call.func.value)!r}",
                            name=None,
                            receiver=receiver,
                        )
        return list(resources.values())


# -- blocking-in-async -------------------------------------------------------

_BLOCKING_CALLS = {
    "time.sleep": "blocks the event loop; use `await asyncio.sleep(...)`",
    "socket.create_connection": (
        "performs a blocking connect on the loop thread; use "
        "`loop.sock_connect` or open the connection off-loop"
    ),
    "socket.getaddrinfo": "blocking DNS resolution; use `loop.getaddrinfo`",
    "subprocess.run": "blocks until the child exits; use `asyncio.create_subprocess_exec`",
    "subprocess.call": "blocks until the child exits; use `asyncio.create_subprocess_exec`",
    "subprocess.check_call": "blocks until the child exits; use `asyncio.create_subprocess_exec`",
    "subprocess.check_output": "blocks until the child exits; use `asyncio.create_subprocess_exec`",
    "os.fsync": "blocking disk flush; offload to an executor",
    "os.unlink": "filesystem metadata op that can block the loop; offload to an executor",
    "os.remove": "filesystem metadata op that can block the loop; offload to an executor",
    "os.replace": "filesystem metadata op that can block the loop; offload to an executor",
    "open": "direct file I/O on the loop thread; offload to an executor",
    "io.open": "direct file I/O on the loop thread; offload to an executor",
    "shutil.rmtree": "blocking recursive delete; offload to an executor",
}

# Method names that are blocking when invoked directly (the async
# spellings go through `loop.sock_*` / awaitable wrappers instead).
_BLOCKING_METHODS = {
    "accept": "use `loop.sock_accept`",
    "recv": "use `loop.sock_recv`",
    "recv_into": "use `loop.sock_recv_into`",
    "sendall": "use `loop.sock_sendall`",
    "acquire": (
        "a threading lock blocks the whole loop; keep critical sections "
        "lock-free on the loop or use an asyncio.Lock"
    ),
    "shutdown": "joining worker threads stalls every connection on the loop",
}


@register_pass
class BlockingInAsyncPass(FlowPass):
    pass_id = "blocking-in-async"
    description = (
        "blocking calls (sleep, socket ops, lock acquire, file I/O) "
        "reachable inside async def bodies"
    )

    def check_function(
        self, cfg: ControlFlowGraph, aliases: Aliases, path: str
    ) -> Iterator[Finding]:
        if not cfg.is_async:
            return
        awaited: Set[int] = set()
        for node in _walk_shallow(cfg.func):
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
        reachable = cfg.reachable()
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            for event in block.events:
                for call in _calls_in(event):
                    if id(call) in awaited:
                        continue  # awaitable wrappers are the fix, not the bug
                    complaint = self._complaint(call, aliases)
                    if complaint is not None:
                        yield self.finding(
                            path,
                            call,
                            f"{complaint[0]} inside async def "
                            f"{cfg.func.name!r}: {complaint[1]}",
                        )

    @staticmethod
    def _complaint(call: ast.Call, aliases: Aliases) -> Optional[Tuple[str, str]]:
        target = _canonical(call.func, aliases)
        if target in _BLOCKING_CALLS:
            return f"{target}()", _BLOCKING_CALLS[target]
        if isinstance(call.func, ast.Attribute):
            method = call.func.attr
            if method in _BLOCKING_METHODS:
                receiver = _last_segment(call.func.value)
                if method in {"accept", "recv", "recv_into", "sendall"}:
                    # loop.sock_* / stream wrappers carry distinct names,
                    # so a bare socket method here is the blocking one.
                    return (
                        f".{method}() (blocking socket op)",
                        _BLOCKING_METHODS[method],
                    )
                if method == "acquire" and receiver is not None:
                    return f"{receiver}.acquire()", _BLOCKING_METHODS[method]
                if method == "shutdown" and call.keywords:
                    waits = any(
                        kw.arg == "wait"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in call.keywords
                    )
                    if waits:
                        return (
                            f".{method}(wait=True)",
                            _BLOCKING_METHODS[method],
                        )
        return None


# -- lock-across-await -------------------------------------------------------


def _lock_like(expr: ast.expr, aliases: Aliases) -> Optional[str]:
    """A short label if ``expr`` names (or constructs) a blessed lock."""
    if isinstance(expr, ast.Call):
        target = _canonical(expr.func, aliases)
        if target is not None and target.rsplit(".", 1)[-1] in {
            "make_lock",
            "make_rlock",
        }:
            return ast.unparse(expr)
        return None
    segment = _last_segment(expr)
    if segment is not None and (
        "lock" in segment.lower() or "mutex" in segment.lower()
    ):
        return segment
    return None


@register_pass
class LockAcrossAwaitPass(FlowPass):
    pass_id = "lock-across-await"
    description = "a make_lock() lock held across an await expression"

    def check_function(
        self, cfg: ControlFlowGraph, aliases: Aliases, path: str
    ) -> Iterator[Finding]:
        if not cfg.is_async:
            return
        yield from self._with_blocks(cfg, aliases, path)
        yield from self._explicit_acquires(cfg, aliases, path)

    # A sync `with lock:` whose body awaits: structural, since the body
    # is lexically scoped.  (`async with` is the asyncio-lock idiom and
    # is exempt — those locks are made to be held across awaits.)
    def _with_blocks(
        self, cfg: ControlFlowGraph, aliases: Aliases, path: str
    ) -> Iterator[Finding]:
        for node in _walk_shallow(cfg.func):
            if not isinstance(node, ast.With):
                continue
            held = [
                label
                for item in node.items
                if (label := _lock_like(item.context_expr, aliases)) is not None
            ]
            if not held:
                continue
            for stmt in node.body:
                for sub in _walk_shallow(stmt):
                    if isinstance(sub, ast.Await):
                        yield self.finding(
                            path,
                            sub,
                            f"await while holding lock {held[0]!r}: every "
                            "other task on the loop blocks on this lock "
                            "for the await's full duration; release "
                            "before awaiting",
                        )

    # Explicit lock.acquire() ... await ... lock.release() sequences:
    # a forward may-analysis over the CFG (held on *any* path in).
    def _explicit_acquires(
        self, cfg: ControlFlowGraph, aliases: Aliases, path: str
    ) -> Iterator[Finding]:
        lattice: SetUnionLattice[str] = SetUnionLattice()

        def step(
            event: Event,
            held: FrozenSet[str],
            report: Optional[List[Tuple[ast.Await, str]]],
        ) -> FrozenSet[str]:
            if held and report is not None:
                for root in _event_exprs(event):
                    for sub in _walk_shallow(root):
                        if isinstance(sub, ast.Await):
                            report.append((sub, sorted(held)[0]))
            for call in _calls_in(event):
                if not isinstance(call.func, ast.Attribute):
                    continue
                label = _lock_like(call.func.value, aliases)
                if label is None:
                    continue
                if call.func.attr == "acquire":
                    held = held | {label}
                elif call.func.attr == "release":
                    held = held - {label}
            return held

        def transfer(block: BasicBlock, fact: FrozenSet[str]) -> FrozenSet[str]:
            for event in block.events:
                fact = step(event, fact, None)
            return fact

        facts = solve_forward(cfg, lattice, transfer, lattice.bottom())
        findings: List[Tuple[ast.Await, str]] = []
        reachable = cfg.reachable()
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            fact = facts[block.index][0]
            for event in block.events:
                fact = step(event, fact, findings)
        for await_node, label in findings:
            yield self.finding(
                path,
                await_node,
                f"await while lock {label!r} is held (acquired without "
                "release on this path): release before awaiting",
            )


# -- wire-exhaustiveness -----------------------------------------------------


@dataclass
class _Dispatch:
    """One ``subject == FrameType.X`` arm of a dispatch."""

    stmt: ast.If
    member: str
    parent: Sequence[ast.stmt]
    index: int


def _frametype_member(expr: ast.expr, variants: Set[str]) -> Optional[str]:
    """``FrameType.X`` (under any import alias) -> ``"X"``."""
    if not isinstance(expr, ast.Attribute) or expr.attr not in variants:
        return None
    owner = _last_segment(expr.value)
    return expr.attr if owner == "FrameType" else None


@register_pass
class WireExhaustivenessPass(FlowPass):
    pass_id = "wire-exhaustiveness"
    description = (
        "a FrameType dispatch covering only some protocol variants with "
        "no explicit default"
    )

    def _variants(self) -> Optional[Set[str]]:
        # Lazy, like the fault-site pass: lint must stay loadable even
        # when the wire module (or numpy underneath it) cannot import.
        try:
            from repro.core.wire import FrameType
        except Exception:  # pragma: no cover - defensive
            return None
        return {member.name for member in FrameType}

    def check_function(
        self, cfg: ControlFlowGraph, aliases: Aliases, path: str
    ) -> Iterator[Finding]:
        variants = self._variants()
        if not variants:
            return
        func = cfg.func
        groups: Dict[str, List[_Dispatch]] = {}
        defaults: Set[str] = set()
        self._scan(func.body, variants, groups, defaults)
        yield from self._judge_matches(func, variants, path)
        for subject, arms in groups.items():
            covered = {arm.member for arm in arms}
            if len(covered) < 2 or covered >= variants:
                continue
            if subject in defaults or self._has_default(arms):
                continue
            missing = ", ".join(sorted(variants - covered))
            yield self.finding(
                path,
                arms[-1].stmt,
                f"dispatch on wire.FrameType handles only "
                f"{{{', '.join(sorted(covered))}}} and silently ignores "
                f"{{{missing}}}: handle every variant or add an explicit "
                "default that raises/reports",
            )

    def _scan(
        self,
        body: Sequence[ast.stmt],
        variants: Set[str],
        groups: Dict[str, List[_Dispatch]],
        defaults: Set[str],
    ) -> None:
        for index, stmt in enumerate(body):
            if isinstance(stmt, ast.If):
                arm = self._dispatch_arm(stmt, variants, body, index)
                if arm is not None:
                    subject, dispatch = arm
                    groups.setdefault(subject, []).append(dispatch)
            for child_body in self._child_bodies(stmt):
                self._scan(child_body, variants, groups, defaults)

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for attr in ("body", "orelse", "finalbody"):
            child = getattr(stmt, attr, None)
            if child and isinstance(child, list) and isinstance(child[0], ast.stmt):
                yield child
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    def _dispatch_arm(
        self,
        stmt: ast.If,
        variants: Set[str],
        parent: Sequence[ast.stmt],
        index: int,
    ) -> Optional[Tuple[str, _Dispatch]]:
        test = stmt.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Eq, ast.Is))
            and len(test.comparators) == 1
        ):
            return None
        member = _frametype_member(test.comparators[0], variants)
        subject: Optional[ast.expr] = test.left
        if member is None:
            member = _frametype_member(test.left, variants)
            subject = test.comparators[0] if member is not None else None
        if member is None or subject is None:
            return None
        return ast.dump(subject), _Dispatch(stmt, member, parent, index)

    def _has_default(self, arms: List[_Dispatch]) -> bool:
        # (a) an if/elif chain ending in a real else.
        for arm in arms:
            node: ast.If = arm.stmt
            while True:
                orelse = node.orelse
                if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                    node = orelse[0]
                    continue
                if orelse and any(
                    not isinstance(s, ast.Pass) for s in orelse
                ):
                    return True
                break
        # (b) sequential `if ...: ... continue/return` arms with a
        # trailing fall-through handler in the same statement list.
        last = arms[-1]
        if all(terminates_abruptly(arm.stmt.body) for arm in arms):
            trailing = [
                s
                for s in last.parent[last.index + 1 :]
                if not isinstance(s, ast.Pass)
            ]
            if trailing:
                return True
        return False

    def _judge_matches(
        self, func: ast.AST, variants: Set[str], path: str
    ) -> Iterator[Finding]:
        for node in _walk_shallow(func):
            if not isinstance(node, ast.Match):
                continue
            covered: Set[str] = set()
            has_default = False
            for case in node.cases:
                if (
                    isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None
                ):
                    has_default = any(
                        not isinstance(s, ast.Pass) for s in case.body
                    )
                    continue
                member = self._case_member(case.pattern, variants)
                if member is not None:
                    covered.add(member)
            if len(covered) >= 2 and covered < variants and not has_default:
                missing = ", ".join(sorted(variants - covered))
                yield self.finding(
                    path,
                    node,
                    f"match on wire.FrameType handles only "
                    f"{{{', '.join(sorted(covered))}}} and silently ignores "
                    f"{{{missing}}}: add the remaining cases or a "
                    "`case _:` default that raises/reports",
                )

    @staticmethod
    def _case_member(pattern: ast.pattern, variants: Set[str]) -> Optional[str]:
        if isinstance(pattern, ast.MatchValue):
            return _frametype_member(pattern.value, variants)
        return None
