"""The blessed lock API and the lock-order sanitizer.

Every lock in the system is created through :func:`make_lock` /
:func:`make_rlock` with a *name* — the lock's rank class in the global
acquisition order ("engine.materializers", "materializer",
"anchor-cache", ...).  With sanitizers off (the default) these return
plain ``threading`` primitives with zero overhead.  With sanitizers on
(``SAND_SANITIZERS=1``, or :func:`set_sanitizers`), locks are wrapped so
every acquisition records *held-before* edges into a process-global
graph; acquiring a lock whose name can already reach a currently-held
name through that graph is a lock-order inversion — the classic ABBA
deadlock precursor — and fails immediately with :class:`LockOrderError`
instead of deadlocking once in a thousand runs.

This module is the one place raw ``threading`` locks may be constructed
(the ``raw-lock`` sandlint pass enforces that); it is deliberately
stdlib-only so every other module can import it.
"""

from __future__ import annotations

import os
import threading
from types import TracebackType
from typing import Dict, List, Optional, Protocol, Set, Tuple, Type

_ENV_FLAG = "SAND_SANITIZERS"
_TRUTHY = {"1", "true", "on", "yes"}

_forced: Optional[bool] = None


def sanitizers_enabled() -> bool:
    """Are runtime sanitizers active (env flag or programmatic override)?"""
    if _forced is not None:
        return _forced
    return os.environ.get(_ENV_FLAG, "").strip().lower() in _TRUTHY


def set_sanitizers(enabled: Optional[bool]) -> None:
    """Force sanitizers on/off; ``None`` returns control to the env flag."""
    global _forced
    _forced = enabled


class LockOrderError(RuntimeError):
    """Two lock classes were acquired in contradictory orders."""


class AbstractLock(Protocol):
    """What callers may assume about a blessed lock."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> Optional[bool]: ...


class LockOrderMonitor:
    """Process-global acquisition-order graph and inversion detector.

    Edges are by lock *name* (the rank class), not instance: observing
    "materializer" held while acquiring "anchor-cache" commits the
    system to that order everywhere.  Reentrant acquisition of the same
    instance records nothing; nesting two *different* instances of the
    same name is flagged (same-rank nesting deadlocks just as surely).
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self._mutex = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}
        self._holds = threading.local()
        self.violations: List[str] = []

    # -- per-thread hold stack ----------------------------------------------
    def _stack(self) -> List[Tuple[int, str, bool]]:
        stack = getattr(self._holds, "stack", None)
        if stack is None:
            stack = []
            self._holds.stack = stack
        return stack

    # -- graph --------------------------------------------------------------
    def _reaches(self, src: str, dst: str) -> bool:
        """Is ``dst`` reachable from ``src`` (src == dst counts)?"""
        if src == dst:
            return True
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for succ in self._edges.get(node, ()):
                if succ == dst:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def note_acquire(self, lock: "SanitizedLock") -> None:
        """Record one acquisition; raises on inversion when strict.

        Called *after* the inner lock is taken; on violation the caller
        must release the inner lock before propagating.
        """
        stack = self._stack()
        reentrant = any(entry[0] == id(lock) for entry in stack)
        if not reentrant:
            held_names = {entry[1] for entry in stack}
            with self._mutex:
                for held in held_names:
                    if self._reaches(lock.name, held):
                        message = (
                            f"lock-order inversion: acquiring {lock.name!r} "
                            f"while holding {held!r}, but {lock.name!r} -> "
                            f"{held!r} order was already observed"
                        )
                        self.violations.append(message)
                        if self.strict:
                            raise LockOrderError(message)
                    else:
                        self._edges.setdefault(held, set()).add(lock.name)
        stack.append((id(lock), lock.name, reentrant))

    def note_release(self, lock: "SanitizedLock") -> None:
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position][0] == id(lock):
                del stack[position]
                return

    # -- reporting -----------------------------------------------------------
    def edges(self) -> Dict[str, Set[str]]:
        with self._mutex:
            return {name: set(succs) for name, succs in self._edges.items()}

    def report(self) -> List[str]:
        with self._mutex:
            return list(self.violations)

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self.violations.clear()


LOCK_MONITOR = LockOrderMonitor()


class SanitizedLock:
    """A named lock that reports every acquisition to the monitor."""

    def __init__(
        self,
        name: str,
        inner: AbstractLock,
        monitor: Optional[LockOrderMonitor] = None,
    ) -> None:
        self.name = name
        self._inner = inner
        self._monitor = monitor if monitor is not None else LOCK_MONITOR

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            try:
                self._monitor.note_acquire(self)
            except LockOrderError:
                self._inner.release()
                raise
        return acquired

    def release(self) -> None:
        self._monitor.note_release(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedLock({self.name!r})"


def make_lock(name: str, monitor: Optional[LockOrderMonitor] = None) -> AbstractLock:
    """A non-reentrant lock of rank class ``name``."""
    if monitor is None and not sanitizers_enabled():
        return threading.Lock()
    return SanitizedLock(name, threading.Lock(), monitor)


def make_rlock(name: str, monitor: Optional[LockOrderMonitor] = None) -> AbstractLock:
    """A reentrant lock of rank class ``name``."""
    if monitor is None and not sanitizers_enabled():
        return threading.RLock()
    return SanitizedLock(name, threading.RLock(), monitor)


def make_condition(name: str) -> threading.Condition:
    """A condition variable of rank class ``name``.

    Conditions are excluded from the order graph: ``wait()`` releases the
    underlying lock mid-hold, which the held-before model cannot express
    without false positives.  The blessed constructor still gives every
    condition a name (for debugging) and keeps raw ``threading.Condition``
    construction confined to this module, as the ``raw-lock`` lint pass
    requires.
    """
    condition = threading.Condition(threading.Lock())
    condition.name = name  # type: ignore[attr-defined]
    return condition
