"""The ``sandlint`` engine: pass registry, per-path policy, pragmas.

The engine owns everything that is *not* invariant-specific: discovering
files, parsing them once, deciding which passes apply to which paths
(:class:`Policy`), and honoring inline suppression pragmas::

    frames[0] = patch  # sandlint: ignore[shared-buffer-write]

A pragma suppresses only the named pass(es), only on its own line;
``ignore[all]`` silences every pass on that line.  Passes themselves are
small AST visitors registered under a stable ``pass_id`` (see
:mod:`repro.analysis.passes`).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding

# Modules whose outputs must be a pure function of (inputs, seeds): the
# decode path, augmentation, the simulator, and the core planner/engine.
DETERMINISTIC_MODULES: Tuple[str, ...] = (
    "repro/codec/",
    "repro/augment/",
    "repro/sim/",
    "repro/core/",
)

# The blessed lock-wrapper module: the one place raw threading locks may
# be constructed.
BLESSED_LOCK_MODULE = "repro/analysis/locks.py"

_PRAGMA_RE = re.compile(r"#\s*sandlint:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")


class LintPass:
    """Base class for lint passes.

    Subclasses set :attr:`pass_id` / :attr:`description` and implement
    :meth:`run`, yielding :class:`Finding` objects for one parsed file.
    Passes never see pragmas or policy — the engine filters.
    """

    pass_id: str = ""
    description: str = ""

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            pass_id=self.pass_id,
            message=message,
        )


PASS_REGISTRY: Dict[str, Type[LintPass]] = {}


def register_pass(cls: Type[LintPass]) -> Type[LintPass]:
    """Class decorator adding a pass to the global registry."""
    if not cls.pass_id:
        raise ValueError(f"{cls.__name__} has no pass_id")
    if cls.pass_id in PASS_REGISTRY:
        raise ValueError(f"duplicate pass_id {cls.pass_id!r}")
    PASS_REGISTRY[cls.pass_id] = cls
    return cls


@dataclass(frozen=True)
class PathRule:
    """Where one pass applies.

    ``include`` entries are path substrings (posix separators); an empty
    tuple means "everywhere".  ``exclude`` entries veto a match.  Paths
    are normalized before matching, so rules written as
    ``repro/codec/`` match regardless of the caller's invocation root.
    """

    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        norm = path.replace(os.sep, "/")
        if any(marker in norm for marker in self.exclude):
            return False
        if not self.include:
            return True
        return any(marker in norm for marker in self.include)


class Policy:
    """Maps pass ids to the paths they police."""

    def __init__(self, rules: Optional[Dict[str, PathRule]] = None) -> None:
        self.rules: Dict[str, PathRule] = dict(rules or {})

    def rule_for(self, pass_id: str) -> PathRule:
        return self.rules.get(pass_id, PathRule())

    def applies(self, pass_id: str, path: str) -> bool:
        return self.rule_for(pass_id).applies(path)


def default_policy() -> Policy:
    """The shipped policy: determinism passes scope to deterministic
    modules; the raw-lock pass exempts the blessed wrapper; everything
    else runs repo-wide."""
    return Policy(
        {
            "unseeded-rng": PathRule(include=DETERMINISTIC_MODULES),
            "wall-clock": PathRule(include=DETERMINISTIC_MODULES),
            "raw-lock": PathRule(exclude=(BLESSED_LOCK_MODULE,)),
            "no-unpooled-send": PathRule(
                include=("repro/core/dataplane", "repro/core/wire")
            ),
            # The event loop lives in the data plane and the service
            # façade; elsewhere blocking calls are just calls.
            "blocking-in-async": PathRule(
                include=("repro/core/dataplane", "repro/core/service")
            ),
        }
    )


def default_passes() -> List[LintPass]:
    """Instantiate every registered pass (importing the shipped set)."""
    # Imported here so registering the shipped passes never races the
    # registry's population order with custom callers.
    from repro.analysis import flowpasses as _flowpasses  # noqa: F401
    from repro.analysis import passes as _passes  # noqa: F401

    return [cls() for cls in PASS_REGISTRY.values()]


def pragma_suppressions(source: str) -> Dict[int, Set[str]]:
    """``{line: {pass ids ignored}}`` from inline sandlint pragmas."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if ids:
            out[lineno] = ids
    return out


def lint_source(
    source: str,
    path: str,
    passes: Optional[Sequence[LintPass]] = None,
    policy: Optional[Policy] = None,
) -> List[Finding]:
    """Run every applicable pass over one file's source."""
    active_passes = list(passes) if passes is not None else default_passes()
    active_policy = policy if policy is not None else default_policy()
    tree = ast.parse(source, filename=path)
    suppressed = pragma_suppressions(source)
    findings: List[Finding] = []
    for lint_pass in active_passes:
        if not active_policy.applies(lint_pass.pass_id, path):
            continue
        for finding in lint_pass.run(tree, path):
            ignored = suppressed.get(finding.line, set())
            if finding.pass_id in ignored or "all" in ignored:
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def lint_file(
    path: str,
    passes: Optional[Sequence[LintPass]] = None,
    policy: Optional[Policy] = None,
) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, passes=passes, policy=policy)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(
    paths: Iterable[str],
    passes: Optional[Sequence[LintPass]] = None,
    policy: Optional[Policy] = None,
) -> Tuple[List[Finding], int]:
    """Lint every python file under ``paths``; returns (findings, files)."""
    active_passes = list(passes) if passes is not None else default_passes()
    active_policy = policy if policy is not None else default_policy()
    findings: List[Finding] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        findings.extend(
            lint_file(file_path, passes=active_passes, policy=active_policy)
        )
    return findings, checked
