"""Runtime sanitizers: write-after-share sentinels and leak checks.

Opt-in (``SAND_SANITIZERS=1``; on in CI), off by default so the hot path
pays nothing.  Three detectors:

* **Lock-order** — lives in :mod:`repro.analysis.locks`; every blessed
  lock reports acquisitions into a process-global held-before graph.
* **Write-after-share** — :class:`BufferSanitizer` records a CRC-32
  sentinel for every buffer that crosses a zero-copy sharing boundary
  (anchor-cache entries, fused-plan base arrays on the ``get_into``
  copy-elision path).  ``verify()`` re-checksums; any drift means some
  alias wrote to bytes another consumer believes are immutable —
  exactly the corruption class that read-only flags alone cannot catch
  (older views of the same buffer stay writable).
* **Raw-frame leaks** — the materializer self-checks after
  ``release_raw_frames`` that no frame-kind array survived and that its
  byte accounting matches the memo's actual contents; drift is reported
  as a leak.

* **Event-loop stalls** — :class:`EventLoopStallMonitor` schedules a
  heartbeat on an asyncio loop and measures how late it lands; a
  callback that blocks the loop (sync file I/O, ``time.sleep``, a
  threading-lock wait) delays every heartbeat behind it.  This is the
  dynamic twin of the static ``blocking-in-async`` lint pass: the pass
  catches the call sites it can name, the monitor catches whatever
  actually blocked in production.

:func:`collect_report` rolls everything into a :class:`SanitizerReport`,
surfaced through ``EngineStats.sanitizer`` when the engine stops.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.locks import (
    LOCK_MONITOR,
    make_lock,
    sanitizers_enabled,
    set_sanitizers,
)

__all__ = [
    "BufferSanitizer",
    "EventLoopStallMonitor",
    "SanitizerReport",
    "buffer_sanitizer",
    "collect_report",
    "reset_sanitizers",
    "sanitizers_enabled",
    "set_sanitizers",
]

# Bounded sentinel table: the sanitizer pins guarded arrays (a sentinel
# must outlive eviction to catch late writers), so cap how many it holds.
MAX_SENTINELS = 8192


@dataclass
class SanitizerReport:
    """Everything the sanitizers found; empty lists mean a clean run."""

    lock_order_violations: List[str] = field(default_factory=list)
    write_after_share: List[str] = field(default_factory=list)
    raw_frame_leaks: List[str] = field(default_factory=list)
    event_loop_stalls: List[str] = field(default_factory=list)

    def clean(self) -> bool:
        return not (
            self.lock_order_violations
            or self.write_after_share
            or self.raw_frame_leaks
            or self.event_loop_stalls
        )

    def as_dict(self) -> Dict[str, List[str]]:
        return {
            "lock_order_violations": list(self.lock_order_violations),
            "write_after_share": list(self.write_after_share),
            "raw_frame_leaks": list(self.raw_frame_leaks),
            "event_loop_stalls": list(self.event_loop_stalls),
        }


def _checksum(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


class BufferSanitizer:
    """CRC sentinels over shared buffers plus a leak message ledger."""

    def __init__(self) -> None:
        self._mutex = make_lock("buffer-sanitizer")
        # id(array) -> (array, label, crc).  The strong reference keeps
        # the id stable for the sentinel's lifetime.
        self._sentinels: Dict[int, Tuple[np.ndarray, str, int]] = {}
        self._leaks: List[str] = []
        self._violations: List[str] = []
        self.guarded = 0

    # -- write-after-share ---------------------------------------------------
    def guard(self, array: np.ndarray, label: str) -> None:
        """Record a sentinel for a buffer crossing a sharing boundary."""
        with self._mutex:
            if id(array) in self._sentinels:
                return
            if len(self._sentinels) >= MAX_SENTINELS:
                return
            self._sentinels[id(array)] = (array, label, _checksum(array))
            self.guarded += 1

    def verify(self) -> List[str]:
        """Re-checksum every guarded buffer; returns new violations."""
        with self._mutex:
            fresh: List[str] = []
            for key, (array, label, crc) in list(self._sentinels.items()):
                if _checksum(array) != crc:
                    fresh.append(
                        f"write-after-share: {label} mutated after it was "
                        "shared zero-copy"
                    )
                    del self._sentinels[key]
            self._violations.extend(fresh)
            return fresh

    def release_region(self, array: np.ndarray) -> int:
        """Drop (without verifying) sentinels overlapping ``array``.

        Called when a pooled delivery buffer returns to its pool: the
        batch slots guarded inside it are about to be legitimately
        rewritten by the next lease, so their write-after-share
        sentinels must not outlive the share.  Returns the number of
        sentinels dropped.
        """
        with self._mutex:
            dropped = 0
            for key, (guarded, _label, _crc) in list(self._sentinels.items()):
                if np.may_share_memory(guarded, array):
                    del self._sentinels[key]
                    dropped += 1
            return dropped

    # -- leaks ----------------------------------------------------------------
    def note_leak(self, message: str) -> None:
        with self._mutex:
            self._leaks.append(message)

    # -- reporting ------------------------------------------------------------
    def report(self) -> Tuple[List[str], List[str]]:
        self.verify()
        with self._mutex:
            return list(self._violations), list(self._leaks)

    def reset(self) -> None:
        with self._mutex:
            self._sentinels.clear()
            self._leaks.clear()
            self._violations.clear()
            self.guarded = 0


_BUFFER_SANITIZER = BufferSanitizer()


class _StallLedger:
    """Process-global, bounded record of observed event-loop stalls."""

    MAX_STALLS = 256

    def __init__(self) -> None:
        self._mutex = make_lock("stall-ledger")
        self._stalls: List[str] = []

    def note(self, message: str) -> None:
        with self._mutex:
            if len(self._stalls) < self.MAX_STALLS:
                self._stalls.append(message)

    def report(self) -> List[str]:
        with self._mutex:
            return list(self._stalls)

    def reset(self) -> None:
        with self._mutex:
            self._stalls.clear()


_STALL_LEDGER = _StallLedger()


class EventLoopStallMonitor:
    """Callback-duration watchdog for one asyncio event loop.

    A heartbeat is scheduled every ``interval`` seconds with
    ``loop.call_later``; the loop can only run it once every callback
    ahead of it has finished, so a heartbeat arriving more than
    ``threshold`` seconds late means *some* callback (or sync call
    inside a coroutine) held the loop for at least that long.  Each
    stall is recorded into the process-global ledger that
    :func:`collect_report` snapshots.

    The default threshold is deliberately generous (scheduler jitter on
    a loaded CI box is real); tests injecting stalls pass their own.
    """

    def __init__(
        self,
        loop: Any,
        threshold: float = 0.25,
        interval: float = 0.02,
        label: str = "event-loop",
    ) -> None:
        self._loop = loop
        self._threshold = threshold
        self._interval = interval
        self._label = label
        self._handle: Optional[Any] = None
        self._expected = 0.0
        self._running = False
        self.stalls_seen = 0

    def start(self) -> None:
        """Begin heartbeating (call from the loop's own thread)."""
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule(self) -> None:
        self._expected = time.perf_counter() + self._interval
        self._handle = self._loop.call_later(self._interval, self._beat)

    def _beat(self) -> None:
        late = time.perf_counter() - self._expected
        if late >= self._threshold:
            self.stalls_seen += 1
            _STALL_LEDGER.note(
                f"event-loop stall: {self._label} blocked "
                f"~{late * 1000.0:.0f}ms (threshold "
                f"{self._threshold * 1000.0:.0f}ms); some callback held "
                "the loop instead of offloading"
            )
        if self._running:
            self._schedule()


def buffer_sanitizer() -> Optional[BufferSanitizer]:
    """The process-global buffer sanitizer, or None when disabled."""
    if not sanitizers_enabled():
        return None
    return _BUFFER_SANITIZER


def collect_report() -> SanitizerReport:
    """Snapshot every sanitizer's findings (verifying sentinels now)."""
    write_after_share, leaks = _BUFFER_SANITIZER.report()
    return SanitizerReport(
        lock_order_violations=LOCK_MONITOR.report(),
        write_after_share=write_after_share,
        raw_frame_leaks=leaks,
        event_loop_stalls=_STALL_LEDGER.report(),
    )


def reset_sanitizers() -> None:
    """Clear all sanitizer state (tests; between independent runs)."""
    LOCK_MONITOR.reset()
    _BUFFER_SANITIZER.reset()
    _STALL_LEDGER.reset()
