"""Finding records produced by :mod:`repro.analysis` lint passes.

A finding pins one invariant violation to a source location.  Findings
are plain data — the engine decides suppression (pragmas, policy) and
the CLI decides presentation — so passes stay trivially testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Finding:
    """One invariant violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    pass_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.pass_id}] {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.pass_id)


def render(findings: List[Finding]) -> str:
    """Stable, file-ordered report (one finding per line)."""
    return "\n".join(f.format() for f in sorted(findings, key=Finding.sort_key))
