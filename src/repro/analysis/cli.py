"""``python -m repro.analysis`` — run sandlint over files or trees.

Exit status is the contract CI relies on: 0 when every applicable pass
is clean, 1 when any finding survives pragma suppression, 2 on usage or
parse errors.  Findings print one per line as ``path:line:col: [pass]
message`` so editors and CI annotations can jump straight to them.

``--format`` selects how findings are emitted:

* ``text`` (default) — the ``path:line:col`` lines above;
* ``json`` — one machine-readable document (``{"findings": [...],
  "files_checked": N}``) for tooling;
* ``github`` — GitHub Actions ``::error file=...`` workflow commands, so
  CI findings surface inline on the PR diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.findings import Finding, render
from repro.analysis.lint import default_passes, default_policy, lint_paths


def render_json(findings: Sequence[Finding], checked: int) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "pass": f.pass_id,
                    "message": f.message,
                }
                for f in findings
            ],
            "files_checked": checked,
        },
        indent=2,
        sort_keys=True,
    )


def render_github(findings: Sequence[Finding]) -> str:
    # Workflow-command syntax: properties are comma-separated, the
    # message follows `::`; newlines/percents in messages would need
    # escaping but findings are single-line by construction.
    return "\n".join(
        f"::error file={f.path},line={f.line},col={f.col + 1},"
        f"title=sandlint[{f.pass_id}]::{f.message}"
        for f in findings
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="sandlint: invariant-enforcing static analysis for SAND",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print every registered pass and exit",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PASS",
        help="run only the named pass (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        dest="format",
        help="finding output format (default: text)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    passes = default_passes()
    if args.list_passes:
        for lint_pass in passes:
            print(f"{lint_pass.pass_id:24s} {lint_pass.description}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    if args.select:
        known = {p.pass_id for p in passes}
        unknown = [s for s in args.select if s not in known]
        if unknown:
            print(f"error: unknown pass(es): {', '.join(unknown)}", file=sys.stderr)
            return 2
        passes = [p for p in passes if p.pass_id in set(args.select)]
    try:
        findings, checked = lint_paths(
            args.paths, passes=passes, policy=default_policy()
        )
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, checked))
        return 1 if findings else 0
    if findings:
        if args.format == "github":
            print(render_github(findings))
        else:
            print(render(findings))
        print(
            f"sandlint: {len(findings)} finding(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"sandlint: clean ({checked} file(s), {len(passes)} pass(es))")
    return 0
