"""A small lattice toolkit and fixpoint solver over :mod:`.cfg` graphs.

Flow-sensitive lint passes phrase their invariant as a dataflow problem:
pick a lattice (the per-program-point fact), write a transfer function
(how one basic block changes the fact), and :func:`solve_forward` /
:func:`solve_backward` iterate to the least fixpoint.  The lattices here
are deliberately tiny — powerset-union for *may* facts ("this lease may
still be open"), keyed maps of those for per-name tracking — because
lint facts are small and the graphs are function-sized.

Transfer functions receive the whole :class:`~repro.analysis.cfg.BasicBlock`
and the incoming fact, and return the outgoing fact; they must be
monotone (never remove information the join added) or the worklist will
not terminate.  Facts must be immutable values (frozensets, tuples,
mappings thereof) so sharing them between blocks is safe.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Generic, Mapping, Tuple, TypeVar

from repro.analysis.cfg import BasicBlock, ControlFlowGraph

T = TypeVar("T")
K = TypeVar("K")

__all__ = [
    "Lattice",
    "MapLattice",
    "SetUnionLattice",
    "Transfer",
    "solve_backward",
    "solve_forward",
]


class Lattice(Generic[T]):
    """A join-semilattice: ``bottom`` plus a commutative ``join``."""

    def bottom(self) -> T:
        raise NotImplementedError

    def join(self, left: T, right: T) -> T:
        raise NotImplementedError


class SetUnionLattice(Lattice[FrozenSet[K]]):
    """Powerset lattice under union: the workhorse for *may* analyses."""

    def bottom(self) -> FrozenSet[K]:
        return frozenset()

    def join(self, left: FrozenSet[K], right: FrozenSet[K]) -> FrozenSet[K]:
        if not left:
            return right
        if not right:
            return left
        return left | right


class MapLattice(Generic[K, T], Lattice[Mapping[K, T]]):
    """Pointwise lift of an inner lattice to key -> fact maps.

    Missing keys mean the inner bottom, so maps stay sparse.  Facts are
    plain (immutable-by-convention) dicts; :meth:`join` allocates only
    when the two sides differ.
    """

    def __init__(self, inner: Lattice[T]) -> None:
        self.inner = inner

    def bottom(self) -> Mapping[K, T]:
        return {}

    def join(self, left: Mapping[K, T], right: Mapping[K, T]) -> Mapping[K, T]:
        if not left:
            return right
        if not right:
            return left
        merged: Dict[K, T] = dict(left)
        for key, fact in right.items():
            have = merged.get(key)
            merged[key] = fact if have is None else self.inner.join(have, fact)
        return merged


Transfer = Callable[[BasicBlock, T], T]


def solve_forward(
    cfg: ControlFlowGraph,
    lattice: Lattice[T],
    transfer: Transfer[T],
    entry_fact: T,
) -> Dict[int, Tuple[T, T]]:
    """Forward fixpoint: ``{block index: (fact_in, fact_out)}``.

    ``fact_in`` of a block is the join over its predecessors'
    ``fact_out`` (the entry block additionally joins ``entry_fact``);
    unreachable blocks keep bottom.
    """
    order = cfg.reverse_postorder()
    position = {index: rank for rank, index in enumerate(order)}
    fact_in: Dict[int, T] = {index: lattice.bottom() for index in order}
    fact_out: Dict[int, T] = {index: lattice.bottom() for index in order}
    fact_in[cfg.entry.index] = entry_fact
    worklist = list(order)
    pending = set(worklist)
    while worklist:
        index = worklist.pop(0)
        pending.discard(index)
        block = cfg.blocks[index]
        incoming = fact_in[index] if index == cfg.entry.index else lattice.bottom()
        for pred in block.predecessors:
            if pred in fact_out:
                incoming = lattice.join(incoming, fact_out[pred])
        fact_in[index] = incoming
        outgoing = transfer(block, incoming)
        if outgoing != fact_out[index]:
            fact_out[index] = outgoing
            for succ in block.successors:
                if succ in position and succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return {
        index: (fact_in[index], fact_out[index])
        for index in order
    }


def solve_backward(
    cfg: ControlFlowGraph,
    lattice: Lattice[T],
    transfer: Transfer[T],
    exit_fact: T,
) -> Dict[int, Tuple[T, T]]:
    """Backward fixpoint: ``{block index: (fact_out, fact_in)}``.

    Facts flow exit -> entry: a block's ``fact_out`` is the join over
    its successors' ``fact_in`` (the exit block additionally joins
    ``exit_fact``), and ``transfer`` maps ``fact_out`` to ``fact_in``
    (i.e. it walks the block's events last-to-first).
    """
    order = cfg.reverse_postorder()
    order_back = list(reversed(order))
    position = {index: rank for rank, index in enumerate(order_back)}
    fact_out: Dict[int, T] = {index: lattice.bottom() for index in order}
    fact_in: Dict[int, T] = {index: lattice.bottom() for index in order}
    fact_out[cfg.exit.index] = exit_fact
    worklist = list(order_back)
    pending = set(worklist)
    while worklist:
        index = worklist.pop(0)
        pending.discard(index)
        block = cfg.blocks[index]
        outgoing = fact_out[index] if index == cfg.exit.index else lattice.bottom()
        for succ in block.successors:
            if succ in fact_in:
                outgoing = lattice.join(outgoing, fact_in[succ])
        fact_out[index] = outgoing
        incoming = transfer(block, outgoing)
        if incoming != fact_in[index]:
            fact_in[index] = incoming
            for pred in block.predecessors:
                if pred in position and pred not in pending:
                    pending.add(pred)
                    worklist.append(pred)
    return {
        index: (fact_out[index], fact_in[index])
        for index in order
    }
