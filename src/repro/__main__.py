"""``python -m repro`` — a one-command smoke demo.

Builds a small synthetic corpus, starts a SAND service, reads a batch
through the POSIX view interface, trains a few steps, and prints what
happened.  Useful as an install check.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SAND reproduction smoke demo",
    )
    parser.add_argument("--videos", type=int, default=8, help="corpus size")
    parser.add_argument("--epochs", type=int, default=2, help="epochs to train")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tiered", action="store_true",
        help="run with a replicated remote tier (k=2) behind the local store",
    )
    parser.add_argument(
        "--status", action="store_true",
        help="print the service status report (per-tier bytes, segment "
             "live/dead ratios, replication health) as JSON after the run",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="serve batches over the async data plane (unix-domain socket, "
             "binary wire protocol) to --trainers concurrent clients "
             "instead of reading through the POSIX facade",
    )
    parser.add_argument(
        "--trainers", type=int, default=4,
        help="concurrent trainer connections in --serve mode, or trainers "
             "per tenant in --shards mode",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="run N engine shards behind the consistent-hash coordinator "
             "and drive them with a multi-tenant trainer fleet",
    )
    parser.add_argument(
        "--tenants", type=int, default=2,
        help="tenants in the --shards fleet",
    )
    args = parser.parse_args(argv)

    from repro import SandClient, load_task_config, __version__
    from repro.datasets import DatasetSpec, SyntheticDataset
    from repro.train import MLPClassifier, batch_features

    print(f"repro {__version__} — SAND reproduction demo")
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=args.videos, min_frames=40, max_frames=60,
                    seed=args.seed)
    )
    config = load_task_config({
        "dataset": {
            "tag": "demo",
            "video_dataset_path": "/dataset/demo",
            "sampling": {"videos_per_batch": 4, "frames_per_video": 6,
                         "frame_stride": 2},
            "augmentation": [
                {
                    "branch_type": "single",
                    "inputs": ["frame"],
                    "outputs": ["a0"],
                    "config": [
                        {"resize": {"shape": [24, 32]}},
                        {"random_crop": {"size": [16, 16]}},
                        {"flip": {"flip_prob": 0.5}},
                    ],
                }
            ],
        }
    })
    service_kwargs = {}
    if args.tiered:
        from repro.storage import RemoteStore

        service_kwargs["remote_store"] = RemoteStore(256 * 1024 * 1024)
    if args.shards > 1:
        return _shard_demo(config, args, service_kwargs)
    client, service = SandClient.create(
        [config], dataset, storage_budget_bytes=64 * 1024 * 1024,
        k_epochs=max(1, args.epochs), num_workers=1, seed=args.seed,
        **service_kwargs,
    )
    if args.serve:
        try:
            return _serve_demo(service, args)
        finally:
            service.shutdown()

    try:
        ctrl = client.begin_task("demo")
        iters = service.iterations_per_epoch("demo")
        model = None
        for epoch in range(args.epochs):
            losses = []
            for iteration in range(iters):
                batch, md = client.read_batch("demo", epoch, iteration)
                feats = batch_features(batch)
                if model is None:
                    model = MLPClassifier(feats.shape[1], 32,
                                          dataset.spec.num_classes,
                                          seed=args.seed)
                losses.append(
                    model.train_step(feats, np.asarray(md["labels"]))
                )
            print(f"  epoch {epoch}: {iters} iterations, "
                  f"mean loss {np.mean(losses):.4f}")
        print(f"  views served through POSIX calls; cache holds "
              f"{len(service.store)} objects "
              f"({service.store.used_bytes / 1e6:.1f} MB)")
        client.finish_task(ctrl)
        if args.status:
            import json

            print(json.dumps(service.status(), indent=2, default=str))
    finally:
        service.shutdown()
    print("OK")
    return 0


def _shard_demo(config, args, service_kwargs) -> int:
    """--shards N: the coordinator fleet demo (consistent-hash routing,
    tenant-fair admission, per-shard utilization report)."""
    import json

    from repro import SandService
    from repro.core import LoadGenerator, ShardCoordinator, make_fleet
    from repro.datasets import DatasetSpec, SyntheticDataset

    def build_shard():
        dataset = SyntheticDataset(
            DatasetSpec(num_videos=args.videos, min_frames=40, max_frames=60,
                        seed=args.seed)
        )
        return SandService(
            [config], dataset, storage_budget_bytes=64 * 1024 * 1024,
            k_epochs=max(1, args.epochs), num_workers=1, seed=args.seed,
            **service_kwargs,
        )

    coordinator = ShardCoordinator([build_shard() for _ in range(args.shards)])
    try:
        tenants = [f"tenant-{i}" for i in range(max(1, args.tenants))]
        fleet = make_fleet(
            tenants, trainers_per_tenant=max(1, args.trainers),
            tasks=["demo"], epochs=args.epochs,
        )
        report = LoadGenerator(coordinator, fleet).run()
        report["routing"] = coordinator.routing_report()
        print(f"  {args.shards} shards served {report['batches']} batches to "
              f"{report['trainers']} trainers across {report['tenants']} tenants")
        print(json.dumps(report, indent=2, default=str))
        if args.status:
            print(json.dumps(coordinator.status(), indent=2, default=str))
        if report["errors"] or report["stuck_trainers"]:
            return 1
    finally:
        coordinator.shutdown()
    print("OK")
    return 0


def _serve_demo(service, args) -> int:
    """--serve: async data plane over a unix socket, N trainer threads."""
    import json
    import tempfile
    import threading
    from pathlib import Path

    from repro.core.dataplane import BatchSocketClient

    iters = service.iterations_per_epoch("demo")
    trainers = max(1, args.trainers)
    with tempfile.TemporaryDirectory() as tmp:
        unix_path = str(Path(tmp) / "sand.sock")
        server = service.serve_async(unix_path=unix_path)
        server.start_background()
        print(f"  async data plane listening on {unix_path} "
              f"({trainers} trainers)")
        errors = []

        def trainer(rank: int) -> None:
            try:
                with BatchSocketClient(unix_path) as cli:
                    for epoch in range(args.epochs):
                        for iteration in range(rank, iters, trainers):
                            batch, md = cli.get_batch_with_retry(
                                "demo", epoch, iteration
                            )
                            assert batch.nbytes > 0 and md["task"] == "demo"
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(f"trainer {rank}: {exc}")

        threads = [
            threading.Thread(target=trainer, args=(rank,), daemon=True)
            for rank in range(trainers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Shut down first: disconnect handling releases any lease still
        # pending its final ACK, so the report below shows a drained pool.
        server.shutdown()
        report = service.dataplane_report()
        report["server"] = server.report()
        for line in errors:
            print(f"  ERROR {line}", file=sys.stderr)
        print(f"  served {args.epochs * iters} batches to {trainers} "
              f"concurrent trainers over the wire protocol")
        print(json.dumps(report, indent=2, default=str))
    if errors:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
