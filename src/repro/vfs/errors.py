"""Errno-style VFS exceptions.

FUSE filesystems report failures as errno values; the in-process VFS
mirrors that so application code (and tests) can match on the same
conditions a real mount would produce.
"""

from __future__ import annotations

import errno


class VfsError(OSError):
    """Base VFS failure carrying an errno, like a failed syscall."""

    errno_value = errno.EIO

    def __init__(self, path: str = "", message: str = ""):
        detail = message or self.__class__.__doc__ or "VFS error"
        super().__init__(self.errno_value, detail.strip().splitlines()[0], path)
        self.path = path


class FileNotFoundVfsError(VfsError):
    """No such file or directory (ENOENT)."""

    errno_value = errno.ENOENT


class BadFileDescriptorError(VfsError):
    """Bad file descriptor (EBADF)."""

    errno_value = errno.EBADF


class IsADirectoryVfsError(VfsError):
    """Is a directory (EISDIR)."""

    errno_value = errno.EISDIR


class NotADirectoryVfsError(VfsError):
    """Not a directory (ENOTDIR)."""

    errno_value = errno.ENOTDIR


class NoAttributeError(VfsError):
    """No such extended attribute (ENODATA)."""

    errno_value = errno.ENODATA


class NotMountedError(VfsError):
    """No filesystem mounted at this path (ENXIO)."""

    errno_value = errno.ENXIO
