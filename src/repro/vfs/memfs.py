"""A simple in-memory provider: files, implicit directories, xattrs.

Used in tests and as the reference implementation of the provider
contract (the SAND service provider in :mod:`repro.core.service` follows
the same semantics but materializes content on demand).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.vfs.errors import (
    FileNotFoundVfsError,
    IsADirectoryVfsError,
    NoAttributeError,
    NotADirectoryVfsError,
)
from repro.vfs.provider import FileHandle, FileSystemProvider, NodeInfo


def normalize(path: str) -> str:
    parts = [p for p in path.split("/") if p and p != "."]
    if ".." in parts:
        raise FileNotFoundVfsError(path, "'..' not supported in virtual paths")
    return "/" + "/".join(parts)


class MemoryProvider(FileSystemProvider):
    """Flat file dict; directories exist implicitly via file prefixes."""

    def __init__(self):
        self._files: Dict[str, bytes] = {}
        self._xattrs: Dict[Tuple[str, str], bytes] = {}

    # -- population ------------------------------------------------------------
    def write(self, path: str, data: bytes) -> None:
        path = normalize(path)
        if path == "/":
            raise IsADirectoryVfsError(path)
        self._files[path] = data

    def setxattr(self, path: str, name: str, value: bytes) -> None:
        path = normalize(path)
        if path not in self._files and not self._is_dir(path):
            raise FileNotFoundVfsError(path)
        self._xattrs[(path, name)] = value

    def remove(self, path: str) -> None:
        path = normalize(path)
        if path not in self._files:
            raise FileNotFoundVfsError(path)
        del self._files[path]
        for key in [k for k in self._xattrs if k[0] == path]:
            del self._xattrs[key]

    # -- provider interface -------------------------------------------------------
    def _is_dir(self, path: str) -> bool:
        if path == "/":
            return True
        prefix = path + "/"
        return any(name.startswith(prefix) for name in self._files)

    def lookup(self, path: str) -> NodeInfo:
        path = normalize(path)
        if path in self._files:
            return NodeInfo(path, is_dir=False, size=len(self._files[path]))
        if self._is_dir(path):
            return NodeInfo(path, is_dir=True)
        raise FileNotFoundVfsError(path)

    def open(self, path: str) -> FileHandle:
        path = normalize(path)
        if path not in self._files:
            if self._is_dir(path):
                raise IsADirectoryVfsError(path)
            raise FileNotFoundVfsError(path)
        return FileHandle(self._files[path], path)

    def getxattr(self, path: str, name: str) -> bytes:
        path = normalize(path)
        key = (path, name)
        if key in self._xattrs:
            return self._xattrs[key]
        if path not in self._files and not self._is_dir(path):
            raise FileNotFoundVfsError(path)
        raise NoAttributeError(path, f"no xattr {name!r}")

    def listdir(self, path: str) -> List[str]:
        path = normalize(path)
        if path in self._files:
            raise NotADirectoryVfsError(path)
        if not self._is_dir(path):
            raise FileNotFoundVfsError(path)
        prefix = "" if path == "/" else path
        seen = set()
        for name in self._files:
            if name.startswith(prefix + "/"):
                rest = name[len(prefix) + 1 :]
                seen.add(rest.split("/", 1)[0])
        return sorted(seen)
