"""In-process virtual filesystem: the FUSE stand-in.

SAND's implementation mounts its view filesystem into the Linux VFS via
FUSE so applications reach views with ordinary POSIX calls (S6, Fig 8).
An actual kernel mount is out of scope here, but the architecture is
preserved: providers (like the SAND service) implement the
:class:`~repro.vfs.provider.FileSystemProvider` interface and are mounted
at path prefixes on a :class:`~repro.vfs.filesystem.VirtualFileSystem`,
which owns the fd table and exposes POSIX-shaped calls (``open``,
``read``, ``pread``, ``getxattr``, ``listdir``, ``stat``, ``close``) with
errno-style failures.
"""

from repro.vfs.errors import (
    BadFileDescriptorError,
    FileNotFoundVfsError,
    IsADirectoryVfsError,
    NoAttributeError,
    NotADirectoryVfsError,
    NotMountedError,
    VfsError,
)
from repro.vfs.provider import FileHandle, FileSystemProvider, NodeInfo
from repro.vfs.memfs import MemoryProvider
from repro.vfs.filesystem import VirtualFileSystem

__all__ = [
    "BadFileDescriptorError",
    "FileHandle",
    "FileNotFoundVfsError",
    "FileSystemProvider",
    "IsADirectoryVfsError",
    "MemoryProvider",
    "NoAttributeError",
    "NodeInfo",
    "NotADirectoryVfsError",
    "NotMountedError",
    "VfsError",
    "VirtualFileSystem",
]
