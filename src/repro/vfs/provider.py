"""Provider interface: what a mounted filesystem must implement.

Mirrors the subset of FUSE operations SAND uses (Table 2): path lookup,
open/read, extended attributes, and directory listing.  Providers see
*mount-relative* paths (always starting with ``/``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.vfs.errors import VfsError


@dataclass(frozen=True)
class NodeInfo:
    """stat()-like record for one path."""

    path: str
    is_dir: bool
    size: int = 0


class FileHandle:
    """An open file: sequential ``read`` plus positional ``pread``.

    The default implementation serves from a bytes buffer, which is how
    SAND hands out materialized training objects; providers with richer
    needs override the methods.
    """

    def __init__(self, data: bytes, path: str = ""):
        self._data = data
        self._pos = 0
        self._closed = False
        self.path = path

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def closed(self) -> bool:
        return self._closed

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if size < 0:
            chunk = self._data[self._pos :]
            self._pos = len(self._data)
        else:
            chunk = self._data[self._pos : self._pos + size]
            self._pos += len(chunk)
        return chunk

    def pread(self, offset: int, size: int) -> bytes:
        self._check_open()
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        return self._data[offset : offset + size]

    def close(self) -> None:
        self._closed = True
        self._data = b""

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"read on closed handle for {self.path!r}")


class FileSystemProvider:
    """Abstract mounted filesystem."""

    def lookup(self, path: str) -> NodeInfo:
        """stat() a path; raise FileNotFoundVfsError if absent."""
        raise NotImplementedError

    def open(self, path: str) -> FileHandle:
        """Open a file for reading; may materialize content lazily."""
        raise NotImplementedError

    def getxattr(self, path: str, name: str) -> bytes:
        """Fetch one extended attribute; raise NoAttributeError if absent."""
        raise NotImplementedError

    def listdir(self, path: str) -> List[str]:
        """List entry names of a directory."""
        raise NotImplementedError

    def release(self, handle: FileHandle) -> None:
        """Called when the VFS closes a handle (optional hook)."""
        handle.close()
