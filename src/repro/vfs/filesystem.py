"""The VFS proper: mount table + file-descriptor table.

Applications call this the way they would call the kernel: paths are
resolved through the mount table (longest-prefix match, like Linux mount
points), opens return integer fds, reads go through the fd table, and
failures carry errnos.  SAND's POSIX facade (:mod:`repro.core.posix`)
is a thin veneer over one of these.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vfs.errors import (
    BadFileDescriptorError,
    NotMountedError,
)
from repro.vfs.memfs import normalize
from repro.vfs.provider import FileHandle, FileSystemProvider, NodeInfo


class VirtualFileSystem:
    """Mount table and fd table over :class:`FileSystemProvider` objects."""

    _FIRST_FD = 3  # leave 0/1/2 for the usual suspects

    def __init__(self):
        self._mounts: Dict[str, FileSystemProvider] = {}
        self._fds: Dict[int, Tuple[FileSystemProvider, FileHandle]] = {}
        self._next_fd = self._FIRST_FD

    # -- mount management ---------------------------------------------------
    def mount(self, prefix: str, provider: FileSystemProvider) -> None:
        prefix = normalize(prefix)
        if prefix in self._mounts:
            raise ValueError(f"mount point {prefix!r} already in use")
        self._mounts[prefix] = provider

    def unmount(self, prefix: str) -> None:
        prefix = normalize(prefix)
        if prefix not in self._mounts:
            raise NotMountedError(prefix)
        open_paths = [
            handle.path
            for provider, handle in self._fds.values()
            if provider is self._mounts[prefix]
        ]
        if open_paths:
            raise ValueError(
                f"cannot unmount {prefix!r}: open files {open_paths[:3]}"
            )
        del self._mounts[prefix]

    def mounts(self) -> List[str]:
        return sorted(self._mounts)

    def _resolve(self, path: str) -> Tuple[FileSystemProvider, str]:
        path = normalize(path)
        best: Optional[str] = None
        for prefix in self._mounts:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                if best is None or len(prefix) > len(best):
                    best = prefix
        if best is None:
            raise NotMountedError(path)
        relative = path[len(best):] if best != "/" else path
        return self._mounts[best], normalize(relative)

    # -- POSIX-shaped calls ------------------------------------------------------
    def open(self, path: str) -> int:
        provider, rel = self._resolve(path)
        handle = provider.open(rel)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = (provider, handle)
        return fd

    def read(self, fd: int, size: int = -1) -> bytes:
        _, handle = self._handle(fd)
        return handle.read(size)

    def pread(self, fd: int, offset: int, size: int) -> bytes:
        _, handle = self._handle(fd)
        return handle.pread(offset, size)

    def close(self, fd: int) -> None:
        provider, handle = self._handle(fd)
        del self._fds[fd]
        provider.release(handle)

    def fstat(self, fd: int) -> NodeInfo:
        _, handle = self._handle(fd)
        return NodeInfo(handle.path, is_dir=False, size=handle.size)

    def stat(self, path: str) -> NodeInfo:
        provider, rel = self._resolve(path)
        return provider.lookup(rel)

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except OSError:
            return False

    def getxattr(self, path: str, name: str) -> bytes:
        provider, rel = self._resolve(path)
        return provider.getxattr(rel, name)

    def listdir(self, path: str) -> List[str]:
        provider, rel = self._resolve(path)
        return provider.listdir(rel)

    @property
    def open_fds(self) -> List[int]:
        return sorted(self._fds)

    def _handle(self, fd: int) -> Tuple[FileSystemProvider, FileHandle]:
        if fd not in self._fds:
            raise BadFileDescriptorError(str(fd), f"fd {fd} is not open")
        return self._fds[fd]
