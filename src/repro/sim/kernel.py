"""Generator-based discrete-event simulation kernel.

A tiny, deterministic SimPy-style kernel.  Simulation *processes* are
Python generators that ``yield`` awaitables:

* :class:`Timeout` — resume after a fixed amount of virtual time,
* :class:`Event` — resume when the event is triggered (with its value),
* another :class:`Process` — resume when that process finishes (join),
* resource requests from :mod:`repro.sim.resources`.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a given
program always produces the same timeline.

Example
-------
>>> sim = Simulation()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("a", 2.0))
>>> _ = sim.spawn(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. negative delays, re-triggered events)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The interrupting cause is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; :meth:`trigger` fires it with a value (or
    :meth:`fail` with an exception), waking every waiter.  Waiters that
    subscribe after the event has fired resume immediately.
    """

    __slots__ = ("sim", "_value", "_exc", "_fired", "_waiters")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._waiters: list[Process] = []

    @property
    def triggered(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError("event triggered twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule_resume(proc, value)

    def fail(self, exc: BaseException) -> None:
        if self._fired:
            raise SimulationError("event triggered twice")
        self._fired = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule_throw(proc, exc)

    # -- awaitable protocol -------------------------------------------------
    def _subscribe(self, proc: "Process") -> None:
        if self._fired:
            if self._exc is not None:
                self.sim._schedule_throw(proc, self._exc)
            else:
                self.sim._schedule_resume(proc, self._value)
        else:
            self._waiters.append(proc)

    def _unsubscribe(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Timeout:
    """Awaitable that resumes a process after ``delay`` units of time."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, proc: "Process") -> None:
        proc.sim._schedule_resume(proc, self.value, delay=self.delay)

    def _unsubscribe(self, proc: "Process") -> None:
        proc._cancelled_timeout = True


class Process:
    """A running simulation process wrapping a generator.

    Yield awaitables from the generator to pause; the value the awaitable
    produces becomes the result of the ``yield`` expression.  A process is
    itself awaitable: yielding it joins it and produces its return value.
    """

    __slots__ = (
        "sim",
        "name",
        "_gen",
        "_done",
        "_result",
        "_exc",
        "_waiters",
        "_waiting_on",
        "_cancelled_timeout",
        "_resume_seq",
    )

    def __init__(self, sim: "Simulation", gen: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._done = False
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: list[Process] = []
        self._waiting_on: Any = None
        self._cancelled_timeout = False
        self._resume_seq = 0

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(f"process {self.name!r} still running")
        if self._exc is not None:
            raise self._exc
        return self._result

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._done:
            return
        if self._waiting_on is not None:
            waiting, self._waiting_on = self._waiting_on, None
            unsubscribe = getattr(waiting, "_unsubscribe", None)
            if unsubscribe is not None:
                unsubscribe(self)
        self.sim._schedule_throw(self, Interrupt(cause))

    # -- awaitable protocol -------------------------------------------------
    def _subscribe(self, proc: "Process") -> None:
        if self._done:
            if self._exc is not None:
                self.sim._schedule_throw(proc, self._exc)
            else:
                self.sim._schedule_resume(proc, self._result)
        else:
            self._waiters.append(proc)

    def _unsubscribe(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    # -- kernel internals ----------------------------------------------------
    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self._gen.throw(throw_exc)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process failure path
            self._finish(exc=exc)
            return
        subscribe = getattr(target, "_subscribe", None)
        if subscribe is None:
            self._finish(
                exc=SimulationError(
                    f"process {self.name!r} yielded non-awaitable {target!r}"
                )
            )
            return
        self._waiting_on = target
        subscribe(self)

    def _finish(
        self, result: Any = None, exc: Optional[BaseException] = None
    ) -> None:
        self._done = True
        self._result = result
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            if exc is not None:
                self.sim._schedule_throw(proc, exc)
            else:
                self.sim._schedule_resume(proc, result)
        if exc is not None and not waiters:
            self.sim._unhandled.append((self, exc))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else "running"
        return f"<Process {self.name!r} {state} at t={self.sim.now:.3f}>"


class Simulation:
    """The event loop: a virtual clock plus a time-ordered callback heap."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._unhandled: list[tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        """Current virtual time (seconds by convention)."""
        return self._now

    # -- public API -----------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator; it first runs at `now`."""
        proc = Process(self, gen, name=name)
        self._schedule_resume(proc, None)
        return proc

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run a plain callback after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._push(self._now + delay, callback)

    def all_of(self, awaitables: Iterable[Any]) -> Event:
        """Event that fires with a list of values once every input fires."""
        items = list(awaitables)
        done_evt = self.event()
        remaining = len(items)
        results: list[Any] = [None] * len(items)
        if remaining == 0:
            done_evt.trigger([])
            return done_evt

        def waiter(i: int, item: Any) -> Generator:
            results[i] = yield item
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                done_evt.trigger(list(results))

        for i, item in enumerate(items):
            self.spawn(waiter(i, item), name=f"all_of[{i}]")
        return done_evt

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the heap is empty or ``until`` is reached."""
        while self._heap:
            when, _, callback = self._heap[0]
            if until is not None and when > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            if when < self._now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self._now = when
            callback()
            if self._unhandled:
                proc, exc = self._unhandled[0]
                raise SimulationError(
                    f"unhandled failure in process {proc.name!r}"
                ) from exc
        else:
            if until is not None and until > self._now:
                self._now = until

    # -- kernel internals -------------------------------------------------------
    def _push(self, when: float, callback: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, callback))

    def _schedule_resume(
        self, proc: Process, value: Any, delay: float = 0.0
    ) -> None:
        proc._resume_seq += 1
        token = proc._resume_seq

        def resume() -> None:
            # A stale resume (e.g. a timeout that was interrupted away)
            # must not re-enter the generator.
            if proc._done or token != proc._resume_seq:
                return
            proc._step(value, None)

        self._push(self._now + delay, resume)

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        proc._resume_seq += 1
        token = proc._resume_seq

        def throw() -> None:
            if proc._done or token != proc._resume_seq:
                return
            proc._step(None, exc)

        self._push(self._now, throw)
