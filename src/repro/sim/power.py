"""Energy model for the simulated node (paper Figures 5 and 15).

Energy is integrated from resource busy time: every :class:`PowerRail`
couples a component's *active* draw to the busy-time integral of a
simulated resource and its *idle* draw to wall time.  The paper reports
that CPU work is 41.6% of total training energy under the on-demand CPU
baseline (Fig 5) and that SAND cuts hyperparameter-search energy by
42-82% vs the CPU baseline (Fig 15); those shapes emerge from this model
once the cost model fixes how long each component stays busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass
class PowerRail:
    """One powered component.

    ``active_watts`` applies per busy unit-second (e.g. per core-second for
    a CPU pool); ``idle_watts`` applies to the whole component for the full
    wall time regardless of load.
    """

    name: str
    active_watts: float
    idle_watts: float = 0.0
    busy_time_fn: Optional[Callable[[], float]] = None

    def energy_joules(self, wall_time: float) -> float:
        busy = self.busy_time_fn() if self.busy_time_fn is not None else 0.0
        return busy * self.active_watts + wall_time * self.idle_watts


@dataclass
class PowerModel:
    """Default component draws for the simulated A2-like node.

    Values follow public figures for the hardware class: an A100 draws
    ~400 W under load and ~50 W idle; NVDEC adds ~60 W while decoding; a
    server vCPU draws ~12 W under load with ~30 W package idle; DRAM and
    NVMe contribute a roughly constant ~25 W and ~10 W.
    """

    gpu_active_watts: float = 400.0
    gpu_idle_watts: float = 50.0
    nvdec_active_watts: float = 60.0
    cpu_core_active_watts: float = 12.0
    cpu_idle_watts: float = 30.0
    dram_watts: float = 25.0
    ssd_watts: float = 10.0


class EnergyMeter:
    """Aggregates rail energies into the paper's component breakdown."""

    def __init__(self):
        self._rails: Dict[str, PowerRail] = {}

    def add_rail(self, rail: PowerRail) -> None:
        if rail.name in self._rails:
            raise ValueError(f"duplicate power rail {rail.name!r}")
        self._rails[rail.name] = rail

    def breakdown(self, wall_time: float) -> Dict[str, float]:
        """Energy in joules per component over ``wall_time`` seconds."""
        return {
            name: rail.energy_joules(wall_time)
            for name, rail in self._rails.items()
        }

    def total_joules(self, wall_time: float) -> float:
        return sum(self.breakdown(wall_time).values())

    def fractions(self, wall_time: float) -> Dict[str, float]:
        parts = self.breakdown(wall_time)
        total = sum(parts.values())
        if total <= 0:
            return {name: 0.0 for name in parts}
        return {name: value / total for name, value in parts.items()}


def standard_meter(
    model: PowerModel,
    wall_time_hint: float,
    cpu_busy_fn: Callable[[], float],
    gpu_busy_fn: Callable[[], float],
    nvdec_busy_fn: Optional[Callable[[], float]] = None,
) -> EnergyMeter:
    """Build the Fig-5 style meter: CPU / GPU / NVDEC / DRAM / SSD rails."""
    del wall_time_hint  # rails take wall time at query time
    meter = EnergyMeter()
    meter.add_rail(
        PowerRail(
            "cpu",
            active_watts=model.cpu_core_active_watts,
            idle_watts=model.cpu_idle_watts,
            busy_time_fn=cpu_busy_fn,
        )
    )
    meter.add_rail(
        PowerRail(
            "gpu",
            active_watts=model.gpu_active_watts - model.gpu_idle_watts,
            idle_watts=model.gpu_idle_watts,
            busy_time_fn=gpu_busy_fn,
        )
    )
    if nvdec_busy_fn is not None:
        meter.add_rail(
            PowerRail(
                "nvdec",
                active_watts=model.nvdec_active_watts,
                busy_time_fn=nvdec_busy_fn,
            )
        )
    meter.add_rail(PowerRail("dram", active_watts=0.0, idle_watts=model.dram_watts))
    meter.add_rail(PowerRail("ssd", active_watts=0.0, idle_watts=model.ssd_watts))
    return meter
