"""Cost model calibrated to the ratios the SAND paper measures.

The paper's testbed (GCP a2-highgpu, A100 + 12 vCPUs) is unavailable, so
timing benchmarks charge virtual time from this model instead.  Every
constant encodes a ratio the paper reports:

* CPU preprocessing takes 2.2-6.5x the GPU step (Fig 2a, "CPU" bars),
* NVDEC/GPU preprocessing takes 1.3-2.7x the GPU step (Fig 2a, "GPU" bars),
* GPU-side decoding costs ~2.6x the energy of CPU decoding (S3),
* GPU decoding of 1080p shrinks the feasible batch from 24 to 16 (Fig 4).

Benchmarks assert *shapes* (orderings and factor bands), never absolute
times, so the model only has to keep these ratios — which it states inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

BYTES_PER_GB = 1024**3
BYTES_PER_TB = 1024**4


@dataclass(frozen=True)
class GPUProfile:
    """An A100-like accelerator: compute, NVDEC decoder, HBM capacity."""

    name: str = "a100"
    memory_gb: float = 40.0
    # NVDEC throughput. A100 NVDEC decodes ~700 fps of 1080p H.264;
    # 1080p is ~2.07 MP, so ~1.4s per 1000 MP => 0.7 ms per MP.
    nvdec_ms_per_megapixel: float = 0.7
    # Decoded-surface working set pinned in HBM per concurrent decode
    # stream (NVDEC reference frames + DALI staging buffers).  Calibrated
    # so 8 concurrent 1080p streams cost ~11 GB, reproducing Fig 4's
    # batch-24 -> batch-16 shrink on a 40 GB A100.
    nvdec_surface_mb_per_megapixel: float = 700.0


@dataclass(frozen=True)
class NodeProfile:
    """A GCP a2-highgpu-Ng-like node (S7.1)."""

    name: str = "a2-highgpu-1g"
    vcpus: int = 12
    gpus: int = 1
    memory_gb: float = 85.0
    gpu: GPUProfile = field(default_factory=GPUProfile)
    local_storage_tb: float = 3.0
    # NVMe local SSD aggregate bandwidth (bytes/s).
    disk_read_bw: float = 2.4e9
    disk_write_bw: float = 1.2e9
    # WAN path to remote Filestore-like storage (S7.1: "connected via a
    # WAN"; EBS-class links run 3-8x below the 55.8 Gbps training demand).
    remote_bw: float = 1.2e9

    def scaled_gpus(self, gpus: int) -> "NodeProfile":
        """The a2-highgpu family scales vCPUs with GPU count (12 per GPU)."""
        return replace(
            self,
            name=f"a2-highgpu-{gpus}g",
            gpus=gpus,
            vcpus=12 * gpus,
            memory_gb=85.0 * gpus,
        )


@dataclass(frozen=True)
class ModelProfile:
    """Per-iteration structure and GPU cost of one paper workload.

    ``gpu_step_s`` is the forward+backward time for one mini-batch on the
    A100; the preprocessing constants below are then calibrated so each
    model's CPU/GPU preprocessing-to-step ratio falls where Fig 2a puts it.
    """

    name: str
    task: str
    dataset: str
    resolution: Tuple[int, int]  # (width, height) of decoded frames
    # (width, height) the training samples are cropped/resized to; cached
    # materialized samples and training batches are this size.
    crop_resolution: Tuple[int, int]
    videos_per_batch: int
    frames_per_video: int
    frame_stride: int
    samples_per_video: int
    gpu_step_s: float
    # HBM needed per sample during training (activations + params share).
    train_mem_gb_per_sample: float
    aug_ops: Tuple[str, ...]
    epochs: int = 100

    @property
    def megapixels(self) -> float:
        w, h = self.resolution
        return (w * h) / 1e6

    @property
    def output_megapixels(self) -> float:
        w, h = self.crop_resolution
        return (w * h) / 1e6

    @property
    def clip_span(self) -> int:
        """Frames of source video one sample spans (selection window)."""
        return self.frames_per_video * self.frame_stride

    @property
    def samples_per_batch(self) -> int:
        return self.videos_per_batch * self.samples_per_video


# The four evaluation workloads (S7.1).  Resolutions are the decode
# resolutions each codebase uses; GPU step times are in line with published
# A100 throughput for these models.  `aug_ops` mirrors each repo's default
# training transform chain.
MODEL_PROFILES: Dict[str, ModelProfile] = {
    "slowfast": ModelProfile(
        name="slowfast",
        task="action_recognition",
        dataset="kinetics400",
        resolution=(1280, 720),
        crop_resolution=(224, 224),
        videos_per_batch=8,
        frames_per_video=32,
        frame_stride=2,
        samples_per_video=1,
        gpu_step_s=0.42,
        train_mem_gb_per_sample=1.1,
        aug_ops=("resize", "random_crop", "flip"),
        epochs=196,
    ),
    "mae": ModelProfile(
        name="mae",
        task="action_recognition",
        dataset="kinetics400",
        resolution=(1280, 720),
        crop_resolution=(224, 224),
        videos_per_batch=8,
        frames_per_video=16,
        frame_stride=2,
        samples_per_video=2,
        gpu_step_s=0.42,
        train_mem_gb_per_sample=0.9,
        aug_ops=("resize", "random_crop", "flip"),
        epochs=200,
    ),
    "hdvila": ModelProfile(
        name="hdvila",
        task="video_captioning",
        dataset="hdvila100m",
        resolution=(1280, 720),
        crop_resolution=(256, 256),
        videos_per_batch=16,
        frames_per_video=8,
        frame_stride=4,
        samples_per_video=1,
        gpu_step_s=0.36,
        train_mem_gb_per_sample=0.7,
        aug_ops=("resize", "center_crop"),
        epochs=100,
    ),
    "basicvsrpp": ModelProfile(
        name="basicvsrpp",
        task="super_resolution",
        dataset="youtube1080p",
        resolution=(1920, 1080),
        crop_resolution=(256, 256),
        videos_per_batch=4,
        frames_per_video=56,
        frame_stride=1,
        samples_per_video=1,
        gpu_step_s=0.45,
        train_mem_gb_per_sample=1.42,
        aug_ops=("random_crop", "flip"),
        epochs=150,
    ),
}


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual-time costs.

    All per-frame costs scale with frame megapixels so 720p and 1080p
    workloads diverge the way the paper's do.
    """

    # Software (CPU) decode on one core.  ~11 ms per 720p frame: a 12-vCPU
    # pool then decodes ~1100 fps of 720p, which with the 2-3x codec
    # amplification puts CPU preprocessing at 2.2-6.5x the GPU step.
    cpu_decode_ms_per_mp: float = 12.0
    # One augmentation op on one core (libtorch-cpu / OpenCV class).
    cpu_aug_ms_per_mp_per_op: float = 2.2
    # CUDA-side augmentation (DALI class) - fast but serialized per GPU.
    gpu_aug_ms_per_mp_per_op: float = 0.35
    # Lossless uint8 frame compression (libpng class, S6).
    png_compress_ms_per_mp: float = 3.0
    png_decompress_ms_per_mp: float = 1.2
    png_ratio: float = 0.55  # compressed bytes / raw bytes for video frames
    # Raw frame bytes per megapixel (RGB uint8).
    raw_bytes_per_mp: float = 3.0e6
    # Encoded video bytes per megapixel-frame (H.264-class ~1/50 of raw).
    encoded_bytes_per_mp: float = 6.0e4
    # Fixed per-read syscall/VFS overhead (FUSE-class).
    vfs_read_overhead_ms: float = 0.15
    # Per-batch host-side assembly (collate, pinning).
    batch_assemble_ms_per_mp: float = 0.6

    # -- decode -------------------------------------------------------------
    def cpu_decode_s(self, frames: int, megapixels: float) -> float:
        """Single-core CPU time to decode ``frames`` frames."""
        return frames * megapixels * self.cpu_decode_ms_per_mp / 1e3

    def nvdec_decode_s(
        self, frames: int, megapixels: float, gpu: GPUProfile
    ) -> float:
        """NVDEC time to decode ``frames`` frames (single decode engine)."""
        return frames * megapixels * gpu.nvdec_ms_per_megapixel / 1e3

    # -- augmentation ---------------------------------------------------------
    def cpu_aug_s(self, frames: int, megapixels: float, ops: int) -> float:
        return frames * megapixels * ops * self.cpu_aug_ms_per_mp_per_op / 1e3

    def gpu_aug_s(self, frames: int, megapixels: float, ops: int) -> float:
        return frames * megapixels * ops * self.gpu_aug_ms_per_mp_per_op / 1e3

    # -- storage --------------------------------------------------------------
    def frame_bytes(self, megapixels: float) -> float:
        return megapixels * self.raw_bytes_per_mp

    def compressed_frame_bytes(self, megapixels: float) -> float:
        return self.frame_bytes(megapixels) * self.png_ratio

    def encoded_video_bytes(self, frames: int, megapixels: float) -> float:
        return frames * megapixels * self.encoded_bytes_per_mp

    def compress_s(self, frames: int, megapixels: float) -> float:
        return frames * megapixels * self.png_compress_ms_per_mp / 1e3

    def decompress_s(self, frames: int, megapixels: float) -> float:
        return frames * megapixels * self.png_decompress_ms_per_mp / 1e3

    # -- batches ---------------------------------------------------------------
    def batch_bytes(self, profile: ModelProfile) -> float:
        """Bytes of one training batch (samples are crop-resolution)."""
        return (
            profile.samples_per_batch
            * profile.frames_per_video
            * self.frame_bytes(profile.output_megapixels)
        )

    def assemble_s(self, profile: ModelProfile) -> float:
        total_mp = (
            profile.samples_per_batch
            * profile.frames_per_video
            * profile.output_megapixels
        )
        return total_mp * self.batch_assemble_ms_per_mp / 1e3


def default_cost_model() -> CostModel:
    return CostModel()
