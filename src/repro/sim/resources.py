"""Capacity resources for the simulation kernel.

Models the hardware SAND's evaluation contends on: vCPU pools, the GPU
(compute, NVDEC, memory), disk and network bandwidth.  Every resource
integrates its in-use level over time so benchmarks can report utilization
the same way the paper does (busy time / wall time).
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.kernel import Event, Simulation, SimulationError


class UtilizationTracker:
    """Integrates a piecewise-constant level over virtual time.

    ``add(now, delta)`` changes the level; :meth:`busy_time` returns the
    integral (level x seconds) up to ``now``.  Used for resource
    utilization and for energy integration.
    """

    __slots__ = ("level", "_integral", "_last_t", "peak")

    def __init__(self, start_time: float = 0.0):
        self.level = 0.0
        self._integral = 0.0
        self._last_t = start_time
        self.peak = 0.0

    def add(self, now: float, delta: float) -> None:
        self._accumulate(now)
        self.level += delta
        if self.level > self.peak:
            self.peak = self.level
        if self.level < -1e-9:
            raise SimulationError(f"utilization level went negative: {self.level}")

    def busy_time(self, now: float) -> float:
        self._accumulate(now)
        return self._integral

    def _accumulate(self, now: float) -> None:
        if now < self._last_t - 1e-9:
            raise SimulationError("utilization tracker observed time reversal")
        self._integral += self.level * (now - self._last_t)
        self._last_t = now


class Lease:
    """A granted share of a :class:`Resource`; release it when done."""

    __slots__ = ("resource", "amount", "_active")

    def __init__(self, resource: "Resource", amount: float):
        self.resource = resource
        self.amount = amount
        self._active = True

    def release(self) -> None:
        if self._active:
            self._active = False
            self.resource._release(self.amount)

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class _Request(Event):
    """Pending acquisition; fires with a :class:`Lease` when granted."""

    __slots__ = ("amount", "priority", "seq")

    def __init__(self, resource: "Resource", amount: float, priority: float):
        super().__init__(resource.sim)
        self.amount = amount
        self.priority = priority
        resource._seq += 1
        self.seq = resource._seq

    def _unsubscribe(self, proc: Any) -> None:
        # Called when the waiting process is interrupted: drop the waiter
        # and mark the request abandoned so the grant loop skips it.
        super()._unsubscribe(proc)
        if not self._waiters and not self._fired:
            self._fired = True  # poison: never grant


class Resource:
    """A capacity-limited resource with priority-ordered FIFO granting.

    ``priority`` follows Unix convention: *lower values are served first*.
    Requests of equal priority are granted in arrival order.  Grants are
    non-preemptive.
    """

    def __init__(self, sim: Simulation, capacity: float, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self.in_use = 0.0
        self._queue: list[tuple[float, int, _Request]] = []
        self._seq = 0
        self.tracker = UtilizationTracker(sim.now)

    # -- public API ---------------------------------------------------------
    def acquire(self, amount: float = 1.0, priority: float = 0.0) -> _Request:
        """Request ``amount`` units; yield the result to obtain a Lease."""
        if amount <= 0 or amount > self.capacity + 1e-9:
            raise SimulationError(
                f"cannot acquire {amount} of {self.name} (capacity {self.capacity})"
            )
        req = _Request(self, amount, priority)
        heapq.heappush(self._queue, (priority, req.seq, req))
        self._grant()
        return req

    def using(self, amount: float = 1.0, priority: float = 0.0, duration: float = 0.0):
        """Convenience process: acquire, hold for ``duration``, release.

        Usage inside a process: ``yield from resource.using(1, duration=d)``.
        """

        def _proc() -> Generator:
            lease = yield self.acquire(amount, priority)
            try:
                yield self.sim.timeout(duration)
            finally:
                lease.release()

        return _proc()

    def utilization(self, now: Optional[float] = None) -> float:
        """Mean fraction of capacity in use since t=0."""
        t = self.sim.now if now is None else now
        if t <= 0:
            return 0.0
        return self.tracker.busy_time(t) / (self.capacity * t)

    def busy_time(self, now: Optional[float] = None) -> float:
        """Integral of in-use units over time (unit-seconds)."""
        t = self.sim.now if now is None else now
        return self.tracker.busy_time(t)

    @property
    def available(self) -> float:
        return self.capacity - self.in_use

    @property
    def queued(self) -> int:
        return sum(1 for _, _, r in self._queue if not r.triggered)

    # -- internals ------------------------------------------------------------
    def _grant(self) -> None:
        while self._queue:
            priority, seq, req = self._queue[0]
            if req.triggered:  # abandoned request
                heapq.heappop(self._queue)
                continue
            if req.amount > self.capacity - self.in_use + 1e-9:
                break
            heapq.heappop(self._queue)
            self.in_use += req.amount
            self.tracker.add(self.sim.now, req.amount)
            req.trigger(Lease(self, req.amount))

    def _release(self, amount: float) -> None:
        self.in_use -= amount
        if self.in_use < -1e-9:
            raise SimulationError(f"{self.name}: released more than acquired")
        self.tracker.add(self.sim.now, -amount)
        self._grant()


class Container:
    """A level-based resource (e.g. bytes of memory).

    ``get`` blocks until the requested amount is available; ``put`` adds to
    the level up to ``capacity``.  Unlike :class:`Resource`, pieces put and
    got need not match one-to-one.
    """

    def __init__(
        self,
        sim: Simulation,
        capacity: float,
        initial: float = 0.0,
        name: str = "container",
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive: {capacity}")
        if not 0 <= initial <= capacity:
            raise SimulationError(f"initial level {initial} out of [0, {capacity}]")
        self.sim = sim
        self.capacity = float(capacity)
        self.level = float(initial)
        self.name = name
        self._getters: list[tuple[int, float, Event]] = []
        self._putters: list[tuple[int, float, Event]] = []
        self._seq = 0
        self.tracker = UtilizationTracker(sim.now)
        self.tracker.add(sim.now, initial)

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"negative get: {amount}")
        self._seq += 1
        evt = self.sim.event()
        self._getters.append((self._seq, amount, evt))
        self._settle()
        return evt

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"negative put: {amount}")
        self._seq += 1
        evt = self.sim.event()
        self._putters.append((self._seq, amount, evt))
        self._settle()
        return evt

    def fraction(self) -> float:
        return self.level / self.capacity

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                seq, amount, evt = self._putters[0]
                if self.level + amount <= self.capacity + 1e-9:
                    self._putters.pop(0)
                    self.level += amount
                    self.tracker.add(self.sim.now, amount)
                    evt.trigger(amount)
                    progressed = True
            if self._getters:
                seq, amount, evt = self._getters[0]
                if amount <= self.level + 1e-9:
                    self._getters.pop(0)
                    self.level -= amount
                    self.tracker.add(self.sim.now, -amount)
                    evt.trigger(amount)
                    progressed = True


class Bandwidth:
    """A shared link (disk or network) with a fixed aggregate rate.

    Transfers are granted ``streams`` at a time; each active transfer moves
    at ``rate / streams`` bytes per second, which approximates fair sharing
    while keeping the event count linear in the number of transfers.
    """

    def __init__(
        self,
        sim: Simulation,
        rate_bytes_per_s: float,
        streams: int = 1,
        name: str = "link",
    ):
        if rate_bytes_per_s <= 0:
            raise SimulationError("bandwidth rate must be positive")
        self.sim = sim
        self.rate = float(rate_bytes_per_s)
        self.streams = int(streams)
        self.name = name
        self.bytes_transferred = 0
        self._slots = Resource(sim, self.streams, name=f"{name}.slots")

    def transfer(self, nbytes: float, priority: float = 0.0) -> Generator:
        """Process fragment: ``yield from link.transfer(n)`` moves n bytes."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer: {nbytes}")
        lease = yield self._slots.acquire(1, priority)
        try:
            per_stream_rate = self.rate / self.streams
            yield self.sim.timeout(nbytes / per_stream_rate)
            self.bytes_transferred += nbytes
        finally:
            lease.release()

    def utilization(self) -> float:
        return self._slots.utilization()
