"""Deterministic discrete-event simulation substrate.

The SAND paper evaluates wall-clock training time, GPU utilization, and
energy on GCP A2 instances (A100 GPUs, NVDEC, 12 vCPUs per GPU).  That
hardware is unavailable here, so every timing experiment in this repo runs
on this substrate instead: a generator-based discrete-event kernel
(:mod:`repro.sim.kernel`), capacity resources with utilization accounting
(:mod:`repro.sim.resources`), an energy model (:mod:`repro.sim.power`), and
a cost model calibrated to the ratios the paper measures
(:mod:`repro.sim.costs`).

The simulation is fully deterministic: no wall-clock reads, no global
random state.  Identical inputs always produce identical timelines.
"""

from repro.sim.kernel import (
    Event,
    Interrupt,
    Process,
    Simulation,
    SimulationError,
    Timeout,
)
from repro.sim.resources import (
    Bandwidth,
    Container,
    Lease,
    Resource,
    UtilizationTracker,
)
from repro.sim.power import EnergyMeter, PowerModel, PowerRail
from repro.sim.costs import (
    CostModel,
    GPUProfile,
    ModelProfile,
    MODEL_PROFILES,
    NodeProfile,
    default_cost_model,
)

__all__ = [
    "Bandwidth",
    "Container",
    "CostModel",
    "EnergyMeter",
    "Event",
    "GPUProfile",
    "Interrupt",
    "Lease",
    "MODEL_PROFILES",
    "ModelProfile",
    "NodeProfile",
    "PowerModel",
    "PowerRail",
    "Process",
    "Resource",
    "Simulation",
    "SimulationError",
    "Timeout",
    "UtilizationTracker",
    "default_cost_model",
]
