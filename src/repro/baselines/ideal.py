"""The ideal baseline: every batch pre-stored, zero preprocessing online.

The paper's upper bound ("all final training batches are pre-stored,
ensuring no GPU stalls").  Functionally: materialize every planned
batch once up front — any batch source can feed the pre-store — then
serve copies with no online decode or augmentation.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.concrete_graph import build_plan_window
from repro.core.config import TaskConfig
from repro.core.engine import PreprocessingEngine


class IdealPipeline:
    """Pre-stored batches for a fixed range of epochs."""

    def __init__(
        self,
        config: TaskConfig,
        dataset,
        epochs: int,
        seed: int = 0,
        coordinated: bool = True,
    ):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.config = config
        plan = build_plan_window(
            [config], dataset, 0, epochs, seed=seed, coordinated=coordinated
        )
        engine = PreprocessingEngine(plan, dataset, num_workers=0)
        self._store: Dict[Tuple[str, int, int], Tuple[np.ndarray, Dict]] = {}
        for key in sorted(plan.batches):
            self._store[key] = engine.get_batch(*key)
        self._iters = plan.iterations_per_epoch[config.tag]

    def iterations_per_epoch(self) -> int:
        return self._iters

    def get_batch(
        self, task: str, epoch: int, iteration: int
    ) -> Tuple[np.ndarray, Dict]:
        key = (task, epoch, iteration)
        if key not in self._store:
            raise KeyError(f"batch {key} was not pre-stored")
        batch, metadata = self._store[key]
        return batch.copy(), dict(metadata)

    @property
    def stored_batches(self) -> int:
        return len(self._store)

    @property
    def stored_bytes(self) -> int:
        return sum(batch.nbytes for batch, _ in self._store.values())
