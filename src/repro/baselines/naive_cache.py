"""The naive caching baseline (paper S7.2, "naive caching").

Caches decoded frames in local storage up to the budget and serves
repeats from there — the obvious fix that does not work: random temporal
selection picks different frames every epoch, so with realistic budgets
(<4% of the decoded dataset) the hit rate stays negligible and nearly
every batch still decodes from scratch.  The paper measures only a 2.7%
speedup; the op-level shape is reproduced here by the miss counters.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.augment.registry import OpRegistry
from repro.baselines.ondemand import OnDemandPipeline
from repro.core.config import TaskConfig
from repro.core.materializer import VideoMaterializer
from repro.storage.objectstore import ObjectStore


class NaiveCachePipeline(OnDemandPipeline):
    """On-demand decode with a budgeted decoded-frame cache."""

    def __init__(
        self,
        config: TaskConfig,
        dataset,
        cache_budget_bytes: int,
        seed: int = 0,
        registry: Optional[OpRegistry] = None,
    ):
        super().__init__(config, dataset, seed=seed, device="cpu", registry=registry)
        self.frame_cache = ObjectStore(cache_budget_bytes)
        self.cached_frame_hits = 0

    def get_batch(
        self, task: str, epoch: int, iteration: int
    ) -> Tuple[np.ndarray, Dict]:
        if task != self.config.tag:
            raise KeyError(f"unknown task {task!r}")
        plan = self._plan_for(epoch)
        assembly = plan.batches[(task, epoch, iteration)]

        samples = []
        videos, timestamps, labels, frame_lists = [], [], [], []
        per_video: Dict[str, VideoMaterializer] = {}
        for video_id, leaf_key in assembly.samples:
            if video_id not in per_video:
                graph = plan.graphs[video_id]
                # Frontier = this video's frame nodes: decoded frames are
                # what this baseline caches (StorageFullError inside the
                # materializer silently skips frames that do not fit).
                frame_keys = {n.key for n in graph.frames()}
                per_video[video_id] = VideoMaterializer(
                    graph,
                    self.dataset.get_bytes(video_id),
                    cache=self.frame_cache,
                    frontier=frame_keys,
                    registry=self.registry,
                )
            materializer = per_video[video_id]
            samples.append(materializer.get(leaf_key))
            leaf = plan.graphs[video_id].nodes[leaf_key]
            indices = list(leaf.frame_indices or ())
            md = plan.graphs[video_id].metadata
            videos.append(video_id)
            frame_lists.append(indices)
            timestamps.append([round(i / md.fps, 6) for i in indices])
            label = getattr(self.dataset, "label", None)
            labels.append(label(video_id) if callable(label) else None)
            self.stats.frames_used += len(indices)

        for materializer in per_video.values():
            self.stats.frames_decoded_cpu += materializer.stats.frames_decoded
            self.cached_frame_hits += materializer.stats.cache_hits
            self.stats.merge_ops(materializer.stats.ops_applied)
            materializer.release_all()

        self.stats.batches_served += 1
        batch = np.stack(samples, axis=0)
        metadata = {
            "task": task,
            "epoch": epoch,
            "iteration": iteration,
            "videos": videos,
            "frame_indices": frame_lists,
            "timestamps": timestamps,
            "labels": labels,
        }
        return batch, metadata

    @property
    def hit_rate(self) -> float:
        """Fraction of *wanted* frames served from the cache."""
        if self.stats.frames_used == 0:
            return 0.0
        return min(1.0, self.cached_frame_hits / self.stats.frames_used)

    def cache_fraction_of_dataset(self) -> float:
        """Cached bytes / bytes of all decoded frames in the dataset."""
        total = 0
        for md in self.dataset.iter_metadata():
            total += md.num_frames * md.width * md.height * 3
        if total == 0:
            return 0.0
        return min(1.0, self.frame_cache.capacity_bytes / total)
