"""The on-demand baseline: decode-per-iteration, zero reuse (S3, Fig 3).

This is how PyAV/decord- or DALI-based loaders behave: every batch
decodes its own frames (paying the GOP lead-in each time), applies fresh
random augmentation, and discards everything afterwards.  Implemented as
SAND-without-planning: an *uncoordinated* one-epoch plan provides the
batch schedule and sampling semantics, and each batch materializes its
samples with a throwaway per-video materializer — so decoded frames
never survive an iteration, exactly like the baseline loaders.

``device`` only affects which counter decode lands in (``cpu`` vs
``nvdec``) — pixel results are identical; the timing difference is the
simulation harness's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.augment.registry import OpRegistry
from repro.core.concrete_graph import MaterializationPlan, build_plan_window
from repro.core.config import TaskConfig
from repro.core.materializer import VideoMaterializer


@dataclass
class PipelineStats:
    """What the baseline actually did."""

    batches_served: int = 0
    frames_used: int = 0
    frames_decoded_cpu: int = 0
    frames_decoded_nvdec: int = 0
    ops_applied: Dict[str, int] = field(default_factory=dict)

    @property
    def frames_decoded(self) -> int:
        return self.frames_decoded_cpu + self.frames_decoded_nvdec

    @property
    def decode_amplification(self) -> float:
        if self.frames_used == 0:
            return 0.0
        return self.frames_decoded / self.frames_used

    def merge_ops(self, ops: Dict[str, int]) -> None:
        for name, count in ops.items():
            self.ops_applied[name] = self.ops_applied.get(name, 0) + count


class OnDemandPipeline:
    """Fresh-decode, fresh-randomness batch source."""

    def __init__(
        self,
        config: TaskConfig,
        dataset,
        seed: int = 0,
        device: str = "cpu",
        registry: Optional[OpRegistry] = None,
    ):
        if device not in ("cpu", "gpu"):
            raise ValueError(f"device must be 'cpu' or 'gpu', got {device!r}")
        self.config = config
        self.dataset = dataset
        self.seed = seed
        self.device = device
        self.registry = registry
        self.stats = PipelineStats()
        self._plans: Dict[int, MaterializationPlan] = {}

    def _plan_for(self, epoch: int) -> MaterializationPlan:
        if epoch not in self._plans:
            self._plans[epoch] = build_plan_window(
                [self.config],
                self.dataset,
                epoch,
                1,
                seed=self.seed,
                coordinated=False,
            )
        return self._plans[epoch]

    def iterations_per_epoch(self) -> int:
        return self._plan_for(0).iterations_per_epoch[self.config.tag]

    def get_batch(
        self, task: str, epoch: int, iteration: int
    ) -> Tuple[np.ndarray, Dict]:
        if task != self.config.tag:
            raise KeyError(f"unknown task {task!r}")
        plan = self._plan_for(epoch)
        assembly = plan.batches[(task, epoch, iteration)]

        samples = []
        videos, timestamps, labels, frame_lists = [], [], [], []
        # One throwaway materializer per video per batch: nothing decoded
        # here outlives this call — the baseline's defining property.
        per_video: Dict[str, VideoMaterializer] = {}
        for video_id, leaf_key in assembly.samples:
            if video_id not in per_video:
                per_video[video_id] = VideoMaterializer(
                    plan.graphs[video_id],
                    self.dataset.get_bytes(video_id),
                    registry=self.registry,
                )
            materializer = per_video[video_id]
            samples.append(materializer.get(leaf_key))
            leaf = plan.graphs[video_id].nodes[leaf_key]
            indices = list(leaf.frame_indices or ())
            md = plan.graphs[video_id].metadata
            videos.append(video_id)
            frame_lists.append(indices)
            timestamps.append([round(i / md.fps, 6) for i in indices])
            label = getattr(self.dataset, "label", None)
            labels.append(label(video_id) if callable(label) else None)
            self.stats.frames_used += len(indices)

        for materializer in per_video.values():
            if self.device == "cpu":
                self.stats.frames_decoded_cpu += materializer.stats.frames_decoded
            else:
                self.stats.frames_decoded_nvdec += materializer.stats.frames_decoded
            self.stats.merge_ops(materializer.stats.ops_applied)
            materializer.release_all()  # and now it is all gone

        self.stats.batches_served += 1
        batch = np.stack(samples, axis=0)
        metadata = {
            "task": task,
            "epoch": epoch,
            "iteration": iteration,
            "videos": videos,
            "frame_indices": frame_lists,
            "timestamps": timestamps,
            "labels": labels,
        }
        return batch, metadata
