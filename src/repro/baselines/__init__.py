"""Baseline preprocessing pipelines (paper S7.1).

The paper compares SAND against on-demand CPU preprocessing (PyAV/decord
+ CPU torchvision), on-demand GPU preprocessing (DALI/NVDEC), a naive
frame cache, and an ideal pre-stored pipeline.  Functionally, the
baselines are "SAND with everything turned off": independent
randomization, no node merging, no cache, fresh decode every batch —
built from the same planning/materialization code so their outputs are
statistically identical to SAND's and their costs are honestly counted.

Timing behaviour of the same pipelines is modeled in
:mod:`repro.simlab`, which this package's classes parameterize.
"""

from repro.baselines.ondemand import OnDemandPipeline, PipelineStats
from repro.baselines.naive_cache import NaiveCachePipeline
from repro.baselines.ideal import IdealPipeline

__all__ = [
    "IdealPipeline",
    "NaiveCachePipeline",
    "OnDemandPipeline",
    "PipelineStats",
]
