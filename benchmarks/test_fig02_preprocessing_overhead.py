"""Fig 2: video preprocessing is the bottleneck of VDL training.

(a) CPU preprocessing takes 2.2-6.5x the GPU step and GPU (NVDEC)
    preprocessing 1.3-2.7x, across the four evaluation workloads.
(b) The resulting stalls push GPU utilization far below the ideal,
    stall-free run.
"""

from conftest import once

from repro.metrics import Table
from repro.sim.costs import MODEL_PROFILES
from repro.simlab.experiments import ALL_MODELS, single_task

CPU_BAND = (2.2, 6.5)
GPU_BAND = (1.3, 2.7)


def run_experiment():
    out = {}
    for model in ALL_MODELS:
        out[model] = single_task(
            model, strategies=("cpu", "gpu", "ideal"), epochs=1,
            iterations_per_epoch=30,
        )
    return out


def test_fig02_preprocessing_overhead(benchmark, emit):
    results = once(benchmark, run_experiment)

    table_a = Table(
        "Fig 2(a): preprocessing time / GPU training time",
        ["model", "cpu prep ratio", "paper", "gpu prep ratio", "paper"],
    )
    table_b = Table(
        "Fig 2(b): GPU utilization under on-demand preprocessing",
        ["model", "cpu util", "gpu util", "ideal util", "paper: util lost 65-88%"],
    )
    for model, reports in results.items():
        step = MODEL_PROFILES[model].gpu_step_s
        cpu_ratio = reports["cpu"].time_per_iteration / step
        gpu_ratio = reports["gpu"].time_per_iteration / step
        table_a.add_row(
            model, f"{cpu_ratio:.2f}x", "2.2-6.5x", f"{gpu_ratio:.2f}x", "1.3-2.7x"
        )
        cpu_util = reports["cpu"].gpu_train_util
        gpu_util = reports["gpu"].gpu_train_util
        ideal_util = reports["ideal"].gpu_train_util
        lost = 1 - cpu_util / ideal_util
        table_b.add_row(
            model, f"{cpu_util:.2f}", f"{gpu_util:.2f}", f"{ideal_util:.2f}",
            f"lost {lost:.0%}",
        )

        # Shape assertions: both ratios inside the paper's bands; CPU
        # preprocessing strictly worse than NVDEC; utilization collapses.
        assert CPU_BAND[0] <= cpu_ratio <= CPU_BAND[1], (model, cpu_ratio)
        assert GPU_BAND[0] <= gpu_ratio <= GPU_BAND[1], (model, gpu_ratio)
        assert cpu_ratio > gpu_ratio
        assert cpu_util < gpu_util < ideal_util
        assert 0.50 <= lost <= 0.88, (model, lost)

    emit("fig02_preprocessing_overhead", table_a, table_b)
