"""Fig 19: CDF of per-frame selection counts over ten epochs.

Paper: without SAND's coordination only 10.6% of (selected) frames are
chosen four or more times in ten epochs; with the shared frame pool the
share climbs to 60.1% — i.e. selection mass concentrates on frames whose
decodes can be reused.  Measured on the real planner's frame reference
counts for a two-task workload.
"""

from conftest import once

from repro.core import build_plan_window, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table

EPOCHS = 10


def make_tasks():
    def config(tag, frames, stride, samples):
        return load_task_config({
            "dataset": {
                "tag": tag,
                "video_dataset_path": "/d",
                "sampling": {
                    "videos_per_batch": 4,
                    "frames_per_video": frames,
                    "frame_stride": stride,
                    "samples_per_video": samples,
                },
                "augmentation": [],
            }
        })

    return [config("a", 8, 2, 1), config("b", 4, 4, 2)]


def selection_histogram(coordinated: bool):
    tasks = make_tasks()
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=8, min_frames=60, max_frames=90, seed=6)
    )
    plan = build_plan_window(
        tasks, dataset, 0, EPOCHS, seed=3, coordinated=coordinated
    )
    counts = plan.frame_selection_counts()
    return list(counts.values())


def run_experiment():
    return {
        "with planning": selection_histogram(True),
        "without planning": selection_histogram(False),
    }


def fraction_at_least(counts, threshold):
    return sum(1 for c in counts if c >= threshold) / len(counts)


def test_fig19_frame_cdf(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        f"Fig 19: frame selection counts over {EPOCHS} epochs",
        ["mode", "frames selected", ">=2 times", ">=4 times", ">=8 times", "paper >=4"],
    )
    fractions = {}
    paper = {"with planning": "60.1%", "without planning": "10.6%"}
    for mode, counts in results.items():
        fractions[mode] = fraction_at_least(counts, 4)
        table.add_row(
            mode,
            len(counts),
            f"{fraction_at_least(counts, 2):.1%}",
            f"{fractions[mode]:.1%}",
            f"{fraction_at_least(counts, 8):.1%}",
            paper[mode],
        )

    with_planning = fractions["with planning"]
    without = fractions["without planning"]
    # Shape: coordination concentrates selections dramatically.
    assert with_planning >= 3 * without
    assert with_planning >= 0.40  # paper: 60.1%
    assert without <= 0.30  # paper: 10.6%

    emit("fig19_frame_cdf", table)
