"""Demand-path pipelining: trainer stall time and storage fs-op traffic.

Two experiments over the same plan window:

* **Stall time** — a simulated trainer (get_batch, then a fixed "GPU
  step" pause) runs the window twice: prefetch off (every batch
  assembles synchronously on the trainer's thread) and prefetch on
  (background workers assemble the next batches during the pause).
  Trainer stall is the wall time spent inside ``get_batch``; the gate
  requires prefetch to cut it at least 2x (Fig 11's overlap claim,
  measured at the batch hand-off).
* **Filesystem ops** — the window's frontier is materialized into a
  legacy per-object store (blob + key + sum sidecars: 3 creates + 4
  writes each) and into a packed write-behind store (batched segment
  appends).  The gate requires at least 5x fewer physical fs ops for
  the packed path.

Results persist to ``benchmark_results/BENCH_prefetch.json`` as the
regression baseline.  Set ``BENCH_SMOKE=1`` for the CI smoke run.
"""

import json
import os
import time

import numpy as np
from conftest import once

from repro.core import (
    CacheManager,
    PreprocessingEngine,
    build_plan_window,
    load_task_config,
    prune_plan,
)
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table
from repro.storage.local import LocalStore

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

NUM_VIDEOS = 6 if SMOKE else 10
FRAMES_PER_VIDEO = 4 if SMOKE else 6
K_EPOCHS = 2


def make_config():
    return load_task_config({
        "dataset": {
            "tag": "t",
            "video_dataset_path": "/d",
            "sampling": {
                "videos_per_batch": 2,
                "frames_per_video": FRAMES_PER_VIDEO,
                "frame_stride": 2,
            },
            "augmentation": [
                {
                    "branch_type": "single",
                    "inputs": ["frame"],
                    "outputs": ["a0"],
                    "config": [
                        {"resize": {"shape": [18, 24]}},
                        {"random_crop": {"size": [12, 12]}},
                        {"flip": {"flip_prob": 0.5}},
                    ],
                }
            ],
        }
    })


def make_dataset():
    return SyntheticDataset(
        DatasetSpec(
            num_videos=NUM_VIDEOS, min_frames=30, max_frames=45,
            width=32, height=24, seed=3,
        )
    )


def run_trainer(engine, plan, gpu_step_s):
    """One pass over the window; returns (stall_s, batches)."""
    stall = 0.0
    batches = {}
    with engine:
        for key in sorted(plan.batches):
            started = time.perf_counter()
            batch, _ = engine.get_batch(*key)
            stall += time.perf_counter() - started
            batches[key] = batch
            if gpu_step_s:
                time.sleep(gpu_step_s)  # the GPU step prefetch hides behind
    return stall, batches


def stall_experiment():
    dataset = make_dataset()
    plan = build_plan_window([make_config()], dataset, 0, K_EPOCHS, seed=5)
    num_batches = len(plan.batches)

    # Prefetch off: every assembly stalls the trainer.  No pause needed —
    # without speculation there is nothing to overlap with.
    engine_off = PreprocessingEngine(plan, dataset, num_workers=0, seed=5)
    stall_off, reference = run_trainer(engine_off, plan, gpu_step_s=0.0)

    # Pace the trainer at ~1.5x the mean synchronous assembly time: a
    # realistic regime where the GPU step dominates and speculation has
    # room to stay ahead.
    gpu_step_s = 1.5 * stall_off / num_batches
    engine_on = PreprocessingEngine(
        plan, dataset, num_workers=0, seed=5, prefetch_depth=2, prefetch_workers=2
    )
    stall_on, pipelined = run_trainer(engine_on, plan, gpu_step_s=gpu_step_s)

    for key, batch in reference.items():
        assert np.array_equal(batch, pipelined[key]), key

    stats = engine_on.stats.prefetch
    return {
        "num_batches": num_batches,
        "gpu_step_s": round(gpu_step_s, 6),
        "stall_off_s": round(stall_off, 6),
        "stall_on_s": round(stall_on, 6),
        "stall_reduction_x": round(stall_off / max(stall_on, 1e-9), 4),
        "prefetch": stats.as_dict(),
    }


def fs_ops_experiment():
    dataset = make_dataset()
    plan = build_plan_window([make_config()], dataset, 0, K_EPOCHS, seed=5)
    pruning = prune_plan(plan, plan.total_cached_bytes() * 1.01)

    import tempfile

    def materialize(store):
        cache = CacheManager(store)
        cache.register_plan(plan, pruning)
        engine = PreprocessingEngine(
            plan, dataset, pruning=pruning, cache=cache, num_workers=0
        )
        engine.drain()
        cache.flush()
        objects = len(list(store.keys()))
        return objects

    with tempfile.TemporaryDirectory() as tmp:
        legacy = LocalStore(10**9, root=f"{tmp}/legacy")
        legacy_objects = materialize(legacy)
        packed = LocalStore(
            10**9, root=f"{tmp}/packed", pack_threshold=1 << 20, write_behind=True
        )
        packed_objects = materialize(packed)
        packed.close()
        result = {
            "objects": legacy_objects,
            "epochs": K_EPOCHS,
            "legacy_fs_ops": legacy.stats.fs_ops,
            "packed_fs_ops": packed.stats.fs_ops,
            "fs_ops_reduction_x": round(
                legacy.stats.fs_ops / max(1, packed.stats.fs_ops), 4
            ),
            "pack_info": packed.pack_info(),
        }
    assert packed_objects == legacy_objects
    return result


def run_experiment():
    return {
        "workload": {
            "num_videos": NUM_VIDEOS,
            "frames_per_video": FRAMES_PER_VIDEO,
            "k_epochs": K_EPOCHS,
            "smoke": SMOKE,
        },
        "stall": stall_experiment(),
        "fs_ops": fs_ops_experiment(),
    }


def test_perf_prefetch(benchmark, emit, results_dir):
    result = once(benchmark, run_experiment)
    stall = result["stall"]
    fs = result["fs_ops"]

    table = Table(
        "Demand-path pipelining: trainer stall and storage traffic",
        ["metric", "baseline", "pipelined", "reduction"],
    )
    table.add_row(
        "trainer stall (s)", stall["stall_off_s"], stall["stall_on_s"],
        f"{stall['stall_reduction_x']}x",
    )
    table.add_row(
        "prefetch hits / batches",
        "-", f"{stall['prefetch']['hits']}/{stall['num_batches']}", "-",
    )
    table.add_row(
        "fs ops (window)", fs["legacy_fs_ops"], fs["packed_fs_ops"],
        f"{fs['fs_ops_reduction_x']}x",
    )

    # Regression gates: prefetch must cut trainer stall at least 2x, and
    # packed segments must cut physical fs ops at least 5x.
    assert stall["stall_reduction_x"] >= 2.0, stall
    assert stall["prefetch"]["hits"] >= 1, stall
    assert fs["fs_ops_reduction_x"] >= 5.0, fs

    if not SMOKE:
        (results_dir / "BENCH_prefetch.json").write_text(
            json.dumps(result, indent=2) + "\n"
        )
    emit("prefetch", table)
