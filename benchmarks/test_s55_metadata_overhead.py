"""S5.5's metadata-overhead claims, measured.

The paper argues SAND's coordination metadata is negligible: a per-video
concrete graph holds "only a few hundred nodes (tens to hundreds of KB)
and generates in milliseconds", orders of magnitude below the
multi-second preprocessing it orchestrates.  This benchmark builds a
window for a 300-frame-per-video corpus (the paper's example) and
measures both.
"""

import sys
import time

from conftest import once

from repro.core import build_plan_window, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table


def make_task(tag, frames, stride, samples):
    return load_task_config({
        "dataset": {
            "tag": tag,
            "video_dataset_path": "/d",
            "sampling": {
                "videos_per_batch": 4,
                "frames_per_video": frames,
                "frame_stride": stride,
                "samples_per_video": samples,
            },
            "augmentation": [
                {
                    "branch_type": "single",
                    "inputs": ["frame"],
                    "outputs": ["a0"],
                    "config": [
                        {"resize": {"shape": [24, 32]}},
                        {"random_crop": {"size": [16, 16]}},
                        {"flip": {"flip_prob": 0.5}},
                    ],
                }
            ],
        }
    })


def graph_bytes(graph) -> int:
    """Rough in-memory footprint of one video's metadata."""
    total = sys.getsizeof(graph.nodes)
    for key, node in graph.nodes.items():
        total += sys.getsizeof(key) + sys.getsizeof(node)
        total += sum(sys.getsizeof(p) for p in node.parents)
    return total


def run_experiment():
    # ~300 frames per video, like the paper's example; two tasks, k=5.
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=16, min_frames=290, max_frames=310, seed=3)
    )
    tasks = [make_task("a", 8, 2, 1), make_task("b", 4, 4, 2)]
    start = time.perf_counter()
    plan = build_plan_window(tasks, dataset, 0, 5, seed=1)
    elapsed = time.perf_counter() - start

    per_video_nodes = [len(g.nodes) for g in plan.graphs.values()]
    per_video_bytes = [graph_bytes(g) for g in plan.graphs.values()]
    return elapsed, len(plan.graphs), per_video_nodes, per_video_bytes


def test_s55_metadata_overhead(benchmark, emit):
    elapsed, videos, nodes, sizes = once(benchmark, run_experiment)
    per_video_ms = elapsed / videos * 1e3

    table = Table(
        "S5.5: concrete-graph metadata overhead (300-frame videos, 2 tasks, k=5)",
        ["metric", "measured", "paper"],
    )
    table.add_row("nodes per video graph", f"{min(nodes)}-{max(nodes)}",
                  "a few hundred")
    table.add_row("metadata per video", f"{min(sizes)//1024}-{max(sizes)//1024} KB",
                  "tens to hundreds of KB")
    table.add_row("generation time per video", f"{per_video_ms:.1f} ms",
                  "milliseconds")

    # "a few hundred nodes" per 300-frame video graph.
    assert max(nodes) < 2000
    assert min(nodes) > 20
    # "tens to hundreds of KB".
    assert max(sizes) < 1024 * 1024
    # "generates in milliseconds" per video.
    assert per_video_ms < 1000

    emit("s55_metadata_overhead", table)
