"""Shared benchmark plumbing.

Each benchmark runs its experiment exactly once through
``benchmark.pedantic(..., rounds=1, iterations=1)`` (experiments are
deterministic; repeating them would only re-measure the same virtual
timeline), prints a paper-vs-measured table, and persists it under
``benchmark_results/`` so the numbers survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir):
    """Print a metrics Table and persist it as <name>.txt."""

    def _emit(name: str, *tables) -> None:
        text = "\n\n".join(t.render() for t in tables)
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


def once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
