"""Fig 20: training convergence with and without materialization planning.

Paper: loss curves with SAND's coordinated randomization overlap the
fresh-randomness baseline, confirming the shared pool/window mechanisms
preserve the statistical properties training needs.  Measured here with
a real numpy classifier trained end-to-end through the real pipeline in
both modes; curves are compared smoothed (3-epoch moving average) since
single-epoch means are noisy at this miniature scale.
"""

import numpy as np
from conftest import once

from repro.baselines import OnDemandPipeline
from repro.core import SandService, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table
from repro.train import Trainer

EPOCHS = 12

CONFIG = {
    "dataset": {
        "tag": "t",
        "video_dataset_path": "/d",
        "sampling": {"videos_per_batch": 6, "frames_per_video": 6, "frame_stride": 2},
        "augmentation": [
            {
                "branch_type": "single",
                "inputs": ["frame"],
                "outputs": ["a0"],
                "config": [
                    {"resize": {"shape": [24, 32]}},
                    {"random_crop": {"size": [20, 26]}},
                    {"flip": {"flip_prob": 0.5}},
                ],
            }
        ],
    }
}

TRAIN_KW = dict(num_classes=4, seed=3, lr=0.01, pool=2, hidden_dim=48)


def run_experiment():
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=24, min_frames=40, max_frames=60, seed=9)
    )
    config = load_task_config(CONFIG)

    # With planning: the SAND service (coordinated randomization).
    service = SandService(
        [config], dataset, storage_budget_bytes=256 * 1024 * 1024,
        k_epochs=EPOCHS, num_workers=0, seed=5,
    )
    iters = service.iterations_per_epoch("t")
    try:
        with_planning = Trainer(service, "t", iters, **TRAIN_KW).run(EPOCHS)
    finally:
        service.shutdown()

    # Without planning: fresh randomness every iteration (the baseline).
    pipeline = OnDemandPipeline(config, dataset, seed=5)
    without_planning = Trainer(pipeline, "t", iters, **TRAIN_KW).run(EPOCHS)

    return (
        with_planning.stats.epoch_means(iters),
        without_planning.stats.epoch_means(iters),
    )


def smooth(curve, window=3):
    kernel = np.ones(window) / window
    return np.convolve(np.asarray(curve), kernel, mode="valid")


def test_fig20_loss_curve(benchmark, emit):
    curve_sand, curve_base = once(benchmark, run_experiment)

    table = Table(
        "Fig 20: epoch-mean training loss (paper: curves overlap)",
        ["epoch", "with planning", "without planning", "gap"],
    )
    for epoch, (a, b) in enumerate(zip(curve_sand, curve_base)):
        table.add_row(epoch, f"{a:.4f}", f"{b:.4f}", f"{abs(a - b):.4f}")

    sand = smooth(curve_sand)
    base = smooth(curve_base)
    loss_range = max(base.max(), sand.max()) - min(base.min(), sand.min())

    # Both runs converge...
    assert sand[-1] < 0.6 * sand[0], (sand[0], sand[-1])
    assert base[-1] < 0.6 * base[0], (base[0], base[-1])
    # ...and the (smoothed) curves overlap: pointwise gaps stay small
    # relative to the loss range and the endpoints agree.
    gaps = np.abs(sand - base)
    assert gaps.max() <= 0.40 * loss_range, gaps.max() / loss_range
    assert abs(sand[-1] - base[-1]) <= 0.25 * loss_range

    emit("fig20_loss_curve", table)
