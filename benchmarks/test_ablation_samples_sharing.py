"""Ablation: intra-video sharing as samples_per_video grows (S5.1/S5.2).

Self-supervised workloads draw several samples per video (the paper's
``samples_per_video``).  Under coordination, all of a video's samples
draw from the same per-epoch frame pool, so decode work grows far slower
than sample count; independent sampling pays decode per sample.  This
quantifies that intra-video reuse on the real planner.
"""

from conftest import once

from repro.core import build_plan_window, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table

SAMPLE_COUNTS = (1, 2, 4)


def make_task(samples):
    return load_task_config({
        "dataset": {
            "tag": "t",
            "video_dataset_path": "/d",
            "sampling": {
                "videos_per_batch": 4,
                "frames_per_video": 6,
                "frame_stride": 2,
                "samples_per_video": samples,
            },
            "augmentation": [],
        }
    })


def run_experiment():
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=12, min_frames=60, max_frames=80, seed=8)
    )
    out = {}
    for samples in SAMPLE_COUNTS:
        task = make_task(samples)
        coord = build_plan_window([task], dataset, 0, 1, seed=2, coordinated=True)
        indep = build_plan_window([task], dataset, 0, 1, seed=2, coordinated=False)
        out[samples] = (
            coord.operation_counts()["decode"],
            indep.operation_counts()["decode"],
        )
    return out


def test_ablation_samples_sharing(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        "Ablation: decode work vs samples_per_video (coordinated pool)",
        ["samples/video", "decode (coordinated)", "decode (independent)",
         "coordinated growth", "independent growth"],
    )
    base_c, base_i = results[SAMPLE_COUNTS[0]]
    for samples in SAMPLE_COUNTS:
        c, i = results[samples]
        table.add_row(samples, c, i, f"{c / base_c:.2f}x", f"{i / base_i:.2f}x")

    # Coordinated decode grows sublinearly in sample count (pool reuse);
    # independent decode grows roughly linearly.
    c4, i4 = results[4]
    assert c4 / base_c < 2.0  # 4x the samples, < 2x the decode
    assert i4 / base_i > 2.0
    # At every sample count, coordination decodes no more than independent.
    for samples in SAMPLE_COUNTS:
        c, i = results[samples]
        assert c <= i

    emit("ablation_samples_sharing", table)
