"""Fig 11: single-task training time and GPU utilization.

Paper: SAND trains 2.4-5.6x faster than on-demand CPU and 1.4-1.7x
faster than on-demand GPU, raising GPU utilization by 2.5-5.7x and
1.4-1.7x respectively.  The naive 3 TB frame cache (S7.2) improves
on-demand processing by only ~2.7%.
"""

from conftest import once

from repro.metrics import Table
from repro.simlab.experiments import ALL_MODELS, single_task

CPU_SPEEDUP_BAND = (2.2, 6.0)  # paper: 2.4-5.6x
GPU_SPEEDUP_BAND = (1.3, 1.9)  # paper: 1.4-1.7x


def run_experiment():
    return {
        model: single_task(model, epochs=3, iterations_per_epoch=30)
        for model in ALL_MODELS
    }


def test_fig11_single_task(benchmark, emit):
    results = once(benchmark, run_experiment)

    table_a = Table(
        "Fig 11(a): training time, normalized to on-demand GPU",
        ["model", "cpu", "gpu", "naive", "sand", "ideal",
         "sand/cpu (2.4-5.6x)", "sand/gpu (1.4-1.7x)"],
    )
    table_b = Table(
        "Fig 11(b): GPU utilization",
        ["model", "cpu", "gpu", "sand", "ideal",
         "sand/cpu (2.5-5.7x)", "sand/gpu (1.4-1.7x)"],
    )
    for model, reports in results.items():
        t = {k: r.time_per_iteration for k, r in reports.items()}
        u = {k: r.gpu_train_util for k, r in reports.items()}
        speed_cpu = t["cpu"] / t["sand"]
        speed_gpu = t["gpu"] / t["sand"]
        table_a.add_row(
            model,
            *(f"{t[k] / t['gpu']:.2f}" for k in ("cpu", "gpu", "naive", "sand", "ideal")),
            f"{speed_cpu:.2f}x",
            f"{speed_gpu:.2f}x",
        )
        table_b.add_row(
            model,
            *(f"{u[k]:.2f}" for k in ("cpu", "gpu", "sand", "ideal")),
            f"{u['sand'] / u['cpu']:.2f}x",
            f"{u['sand'] / u['gpu']:.2f}x",
        )

        assert CPU_SPEEDUP_BAND[0] <= speed_cpu <= CPU_SPEEDUP_BAND[1], (model, speed_cpu)
        assert GPU_SPEEDUP_BAND[0] <= speed_gpu <= GPU_SPEEDUP_BAND[1], (model, speed_gpu)
        # Winner ordering: cpu slowest, then gpu, then naive~cpu, sand ~ ideal.
        assert t["cpu"] > t["gpu"] > t["sand"] >= t["ideal"] * 0.99
        # Naive caching barely helps (paper: 2.7%).
        naive_gain = t["cpu"] / t["naive"] - 1
        assert -0.1 <= naive_gain <= 0.12, (model, naive_gain)
        # SAND lands near the ideal, stall-free run.
        assert t["sand"] / t["ideal"] <= 1.25, (model, t["sand"] / t["ideal"])

    emit("fig11_single_task", table_a, table_b)
