"""Fig 3: on-demand pipelines decode far more than they use, reuse nothing.

Functional measurement on the real pipeline: every iteration decodes the
GOP lead-in of each requested clip (amplification > 1) and discards all
of it, so the same frames are decoded again when the video reappears in
the next epoch.
"""

from conftest import once

from repro.baselines import OnDemandPipeline
from repro.core import load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table

CONFIG = {
    "dataset": {
        "tag": "t",
        "video_dataset_path": "/d",
        "sampling": {"videos_per_batch": 4, "frames_per_video": 6, "frame_stride": 2},
        "augmentation": [
            {
                "branch_type": "single",
                "inputs": ["frame"],
                "outputs": ["a0"],
                "config": [{"resize": {"shape": [20, 24]}}],
            }
        ],
    }
}

EPOCHS = 3


def run_experiment():
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=8, min_frames=50, max_frames=70, gop_size=10, seed=4)
    )
    pipeline = OnDemandPipeline(load_task_config(CONFIG), dataset, seed=1)
    iters = pipeline.iterations_per_epoch()
    per_epoch = []
    unique_frames = set()
    for epoch in range(EPOCHS):
        start_decoded = pipeline.stats.frames_decoded
        start_used = pipeline.stats.frames_used
        for iteration in range(iters):
            _, md = pipeline.get_batch("t", epoch, iteration)
            for video, indices in zip(md["videos"], md["frame_indices"]):
                unique_frames.update((video, i) for i in indices)
        per_epoch.append(
            (
                pipeline.stats.frames_decoded - start_decoded,
                pipeline.stats.frames_used - start_used,
            )
        )
    return pipeline.stats, per_epoch, unique_frames


def test_fig03_repeated_decoding(benchmark, emit):
    stats, per_epoch, unique_frames = once(benchmark, run_experiment)

    table = Table(
        "Fig 3: decode work per epoch under on-demand preprocessing",
        ["epoch", "frames decoded", "frames used", "amplification"],
    )
    for epoch, (decoded, used) in enumerate(per_epoch):
        table.add_row(epoch, decoded, used, f"{decoded / used:.2f}x")
    table.add_row(
        "total", stats.frames_decoded, stats.frames_used,
        f"{stats.decode_amplification:.2f}x",
    )

    # Codec dependencies force decoding beyond the frames used.
    assert stats.decode_amplification > 1.5
    # Zero reuse: every epoch pays the full decode cost again (epochs
    # decode similar amounts; nothing is amortized).
    first = per_epoch[0][0]
    for decoded, _ in per_epoch[1:]:
        assert decoded > 0.7 * first
    # Repeated decoding: total decoded frames far exceed the number of
    # distinct frames ever selected.
    assert stats.frames_decoded > 1.5 * len(unique_frames)

    emit("fig03_repeated_decoding", table)
