"""Fig 12: hyperparameter search with Ray-Tune-style ASHA on 4 GPUs.

Paper: SAND completes the search 2.9-10.2x faster than on-demand CPU and
1.4-2.8x faster than on-demand GPU, within 5-14% of the ideal, with GPU
utilization 3.1-12.3x (vs CPU) and 1.8-2.9x (vs GPU) higher.  All trials
share one dataset, so SAND's materialization runs once for the fleet.
"""

from conftest import once

from repro.metrics import Table
from repro.simlab.experiments import ALL_MODELS, run_search

CPU_BAND = (2.5, 10.5)  # paper: 2.9-10.2x
GPU_BAND = (1.3, 3.0)  # paper: 1.4-2.8x


def run_experiment():
    out = {}
    for model in ALL_MODELS:
        out[model] = {
            name: run_search(
                name, model, num_trials=8, gpus=4, max_epochs=6,
                iterations_per_epoch=12,
            )
            for name in ("cpu", "gpu", "sand", "ideal")
        }
    return out


def test_fig12_hyperparam_search(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        "Fig 12: hyperparameter search (8 trials, ASHA, 4 GPUs)",
        ["model", "cpu wall", "gpu wall", "sand wall", "ideal wall",
         "sand/cpu (2.9-10.2x)", "sand/gpu (1.4-2.8x)",
         "util sand/cpu (3.1-12.3x)", "util sand/gpu (1.8-2.9x)", "gap to ideal"],
    )
    for model, reports in results.items():
        w = {k: r.wall_s for k, r in reports.items()}
        u = {k: r.gpu_train_util for k, r in reports.items()}
        speed_cpu, speed_gpu = w["cpu"] / w["sand"], w["gpu"] / w["sand"]
        util_cpu, util_gpu = u["sand"] / u["cpu"], u["sand"] / u["gpu"]
        gap = w["sand"] / w["ideal"] - 1
        table.add_row(
            model,
            *(f"{w[k]:.0f}s" for k in ("cpu", "gpu", "sand", "ideal")),
            f"{speed_cpu:.2f}x", f"{speed_gpu:.2f}x",
            f"{util_cpu:.2f}x", f"{util_gpu:.2f}x", f"{gap:.1%}",
        )

        assert CPU_BAND[0] <= speed_cpu <= CPU_BAND[1], (model, speed_cpu)
        assert GPU_BAND[0] <= speed_gpu <= GPU_BAND[1], (model, speed_gpu)
        assert 2.5 <= util_cpu <= 12.5, (model, util_cpu)
        assert 1.3 <= util_gpu <= 3.0, (model, util_gpu)
        # Near-ideal (paper: 5-14% gap; warm-up makes ours nonzero too).
        assert gap <= 0.20, (model, gap)
        # ASHA actually early-stopped trials in every configuration.
        assert reports["sand"].early_stopped > 0
        assert reports["sand"].epochs_trained < 8 * 6

    emit("fig12_hyperparam_search", table)
