"""Fig 4: GPU-side decoding shrinks the feasible training batch.

NVDEC output surfaces and DALI staging buffers pin HBM that training
activations would otherwise use: the paper measures batch 24 -> 16 for
1080p video on a 40 GB A100, costing 9.1% training throughput.
"""

from conftest import once

from repro.metrics import Table
from repro.sim.costs import GPUProfile, MODEL_PROFILES
from repro.simlab.workload import max_batch_size

# Amortized per-iteration overhead that does not scale with batch size
# (optimizer step, kernel launches, allreduce), in sample-equivalents:
# calibrated so the 24 -> 16 batch change costs the paper's ~9% throughput.
FIXED_OVERHEAD_SAMPLES = 6.0


def throughput(batch: int) -> float:
    """Relative samples/second at a given batch size."""
    return batch / (FIXED_OVERHEAD_SAMPLES + batch)


def run_experiment():
    model = MODEL_PROFILES["basicvsrpp"]  # the 1080p workload
    gpu = GPUProfile()
    cpu_batch = max_batch_size(model, gpu, decode_on_gpu=False)
    gpu_batch = max_batch_size(model, gpu, decode_on_gpu=True)
    return model, cpu_batch, gpu_batch


def test_fig04_gpu_memory(benchmark, emit):
    model, cpu_batch, gpu_batch = once(benchmark, run_experiment)
    drop = 1 - throughput(gpu_batch) / throughput(cpu_batch)

    table = Table(
        "Fig 4: feasible batch size, 1080p on a 40 GB A100",
        ["decode location", "max batch", "paper", "rel. throughput"],
    )
    table.add_row("CPU (host decode)", cpu_batch, "24", f"{throughput(cpu_batch):.3f}")
    table.add_row("GPU (NVDEC decode)", gpu_batch, "16", f"{throughput(gpu_batch):.3f}")
    table.add_row("throughput penalty", f"{drop:.1%}", "9.1%", "")

    # Shape: GPU decoding costs a meaningful chunk of batch capacity and
    # a high-single-digit share of throughput.
    assert gpu_batch < cpu_batch
    assert 18 <= cpu_batch <= 30
    assert 12 <= gpu_batch <= 20
    assert 0.05 <= drop <= 0.15

    emit("fig04_gpu_memory", table)
