"""Fig 16: operations per epoch with and without materialization planning.

Paper (SlowFast + MAE multi-task): frame-level sharing removes 50.3% of
decoding operations and the shared augmentation window removes 33.1% of
random-crop operations.  Measured here on the real planner: the same two
task shapes, coordinated vs independent randomization, counting unique
operations in the concrete graphs.
"""

from conftest import once

from repro.core import build_plan_window, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table


def make_tasks():
    def config(tag, frames, stride, samples):
        return load_task_config({
            "dataset": {
                "tag": tag,
                "video_dataset_path": "/d",
                "sampling": {
                    "videos_per_batch": 4,
                    "frames_per_video": frames,
                    "frame_stride": stride,
                    "samples_per_video": samples,
                },
                "augmentation": [
                    {
                        "branch_type": "single",
                        "inputs": ["frame"],
                        "outputs": ["a0"],
                        "config": [
                            {"resize": {"shape": [24, 32]}},
                            {"random_crop": {"size": [16, 16]}},
                            {"flip": {"flip_prob": 0.5}},
                        ],
                    }
                ],
            }
        })

    # SlowFast-like: dense clip; MAE-like: sparse clip, two samples.
    return [config("slowfast", 8, 2, 1), config("mae", 4, 4, 2)]


def run_experiment():
    tasks = make_tasks()
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=16, min_frames=60, max_frames=90, seed=2)
    )
    merged = build_plan_window(tasks, dataset, 0, 1, seed=1, coordinated=True)
    independent = build_plan_window(tasks, dataset, 0, 1, seed=1, coordinated=False)
    return merged.operation_counts(), independent.operation_counts()


def test_fig16_op_reduction(benchmark, emit):
    merged, independent = once(benchmark, run_experiment)

    table = Table(
        "Fig 16: unique preprocessing operations in one epoch (SlowFast+MAE)",
        ["operation", "w/o planning", "w/ planning", "reduction", "paper"],
    )
    reductions = {}
    paper = {"decode": "50.3%", "random_crop": "33.1%", "resize": "-", "flip": "-"}
    for op in ("decode", "resize", "random_crop", "flip"):
        reduction = 1 - merged[op] / independent[op]
        reductions[op] = reduction
        table.add_row(op, independent[op], merged[op], f"{reduction:.1%}",
                      paper.get(op, "-"))

    # Paper shapes: decode cut by roughly half, random crops by a third.
    assert 0.35 <= reductions["decode"] <= 0.65, reductions["decode"]
    assert 0.18 <= reductions["random_crop"] <= 0.45, reductions["random_crop"]
    # Planning never increases work.
    for op in reductions:
        assert merged[op] <= independent[op]

    emit("fig16_op_reduction", table)
