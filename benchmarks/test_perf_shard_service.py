"""The standing sharded-service load benchmark ("millions of users").

One experiment, three blocks, persisted to
``benchmark_results/BENCH_shard_service.json`` as the trajectory every
later PR is judged against:

* **Fleet** — N engine shards behind the consistent-hash coordinator
  serve hundreds of GPU-step-paced synthetic trainers spread across
  tenants with mixed quotas.  Reported: p50/p99 demand latency,
  throughput, per-shard utilization, dedup hit rate, and per-tenant
  progress.
* **Dedup** — identically-configured tasks requested by different
  tenants must resolve to one owner shard per view signature; the gate
  asserts ``dedup_hits > 0`` and that the second tenant's pass adds
  zero demand materializations anywhere.
* **One-shard differential** — a 1-shard coordinator must be
  byte-identical to the plain single-engine ``get_batch`` path across
  3 seeds, clean and under the capstone fault schedule (sharding is
  routing, never semantics).

Gates: dedup hits fire, every batch byte-identical in the differential,
no trainer errors, and zero delivery leases outstanding after drain.
Set ``BENCH_SMOKE=1`` for the CI smoke run.
"""

import json
import os
import time

from conftest import once

from repro.core import (
    LoadGenerator,
    SandService,
    ShardCoordinator,
    TenantQuota,
    load_task_config,
    make_fleet,
)
from repro.core.tenancy import AdmissionController
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.faults import FaultSchedule, FaultSpec
from repro.faults.schedule import SITE_ENGINE_JOB, SITE_STORE_GET, SITE_STORE_PUT
from repro.metrics import Table
from repro.storage import RetryPolicy
from repro.storage.local import LocalStore

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SHARDS = 2 if SMOKE else 4
TENANTS = 4 if SMOKE else 8
TRAINERS_PER_TENANT = 2 if SMOKE else 32  # fleet: 8 smoke / 256 full
NUM_VIDEOS = 4 if SMOKE else 8
K_EPOCHS = 2
TASKS = ["t0", "t1", "t2", "t3"]  # identical configs -> shared signatures

FAST_RETRY = RetryPolicy(max_retries=4, base_delay_s=0.0, max_delay_s=0.0)


def make_config(tag):
    return load_task_config({
        "dataset": {
            "tag": tag,
            "video_dataset_path": "/d",
            "sampling": {
                "videos_per_batch": 2,
                "frames_per_video": 4,
                "frame_stride": 2,
            },
            "augmentation": [
                {
                    "branch_type": "single",
                    "inputs": ["frame"],
                    "outputs": ["a0"],
                    "config": [
                        {"resize": {"shape": [24, 32]}},
                        {"random_crop": {"size": [16, 16]}},
                        {"flip": {"flip_prob": 0.5}},
                    ],
                }
            ],
        }
    })


def make_shard(tags=TASKS, seed=0, fault_schedule=None, store=None):
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=NUM_VIDEOS, min_frames=24, max_frames=36,
                    width=32, height=24, seed=3)
    )
    return SandService(
        [make_config(tag) for tag in tags],
        dataset,
        k_epochs=K_EPOCHS,
        num_workers=0,
        seed=seed,
        prefetch_depth=0,
        fault_schedule=fault_schedule,
        retry_policy=FAST_RETRY if fault_schedule is not None else None,
        store=store,
    )


def capstone_schedule(seed):
    return FaultSchedule(seed=seed, specs=[
        FaultSpec(kind="transient-error", site=SITE_STORE_GET, rate=0.05),
        FaultSpec(kind="transient-error", site=SITE_STORE_PUT, rate=0.05),
        FaultSpec(kind="crash", site=SITE_ENGINE_JOB, at_count=2, max_fires=1),
    ])


def batch_keys(service, task):
    engine = service.ensure_window(0, task=task)
    return sorted(k for k in engine.plan.batches if k[0] == task)


def fleet_experiment():
    """The headline fleet: tenants with mixed quotas over N shards."""
    # GPU-step pacing from the mean synchronous assembly time, same
    # convention as the prefetch/dataplane benchmarks.
    reference = make_shard()
    keys = batch_keys(reference, "t0")
    started = time.perf_counter()
    for key in keys:
        reference.get_batch(*key)
    mean_assembly_s = (time.perf_counter() - started) / len(keys)
    reference.shutdown()
    gpu_step_s = 1.5 * mean_assembly_s

    admission = AdmissionController(
        default_quota=TenantQuota(max_inflight=4),
        global_max_inflight=SHARDS * 16,
    )
    coordinator = ShardCoordinator(
        [make_shard() for _ in range(SHARDS)], admission=admission
    )
    tenants = [f"tenant-{i}" for i in range(TENANTS)]
    # Mixed quotas: even tenants heavy, odd tenants small — the fairness
    # policy must keep the small ones progressing.
    for index, tenant in enumerate(tenants):
        admission.set_quota(
            tenant,
            TenantQuota(max_inflight=8, weight=2.0)
            if index % 2 == 0
            else TenantQuota(max_inflight=2, weight=1.0),
        )
    try:
        fleet = make_fleet(
            tenants,
            trainers_per_tenant=TRAINERS_PER_TENANT,
            tasks=TASKS,
            epochs=K_EPOCHS,
            gpu_step_s=gpu_step_s,
        )
        report = LoadGenerator(coordinator, fleet).run(timeout_s=540.0)
        routing = coordinator.routing_report()
        admission_report = admission.report()
        leases = {
            sid: coordinator.shard(sid).delivery_pool.leases_outstanding
            for sid in coordinator.shard_ids()
        }
    finally:
        coordinator.shutdown()
    return {
        "shards": SHARDS,
        "gpu_step_ms": round(gpu_step_s * 1e3, 4),
        "fleet": report,
        "routing": routing,
        "admission": admission_report,
        "leases_outstanding": leases,
    }


def dedup_experiment():
    """Two tenants request identical views; the second materializes nothing."""
    coordinator = ShardCoordinator([make_shard() for _ in range(SHARDS)])
    try:
        keys = batch_keys(coordinator.shard("shard-0"), "t0")
        for (_t, epoch, iteration) in keys:
            coordinator.get_batch("t0", epoch, iteration, tenant="first")
        def demand_counts():
            return {
                sid: coordinator.shard(sid).engine.stats.demand_materializations
                for sid in coordinator.shard_ids()
                if coordinator.shard(sid).engine is not None
            }
        after_first = demand_counts()
        for task in TASKS[1:]:
            for (_t, epoch, iteration) in keys:
                coordinator.get_batch(task, epoch, iteration, tenant=task)
        after_all = demand_counts()
        routing = coordinator.routing_report()
    finally:
        coordinator.shutdown()
    return {
        "distinct_views": len(keys),
        "tenant_passes": len(TASKS),
        "demand_materializations_first_pass": sum(after_first.values()),
        "demand_materializations_all_passes": sum(after_all.values()),
        "dedup_hits": routing["dedup_hits"],
        "dedup_tracked_views": routing["dedup_tracked_views"],
    }


def one_shard_differential():
    """1-shard coordinator == plain service, 3 seeds, clean + faulted."""
    seeds = [0, 1, 2]
    out = {"seeds": seeds, "clean_identical": True, "faulted_identical": True}
    for seed in seeds:
        plain = make_shard(seed=seed)
        coordinator = ShardCoordinator([make_shard(seed=seed)])
        faulted_plain = make_shard(
            seed=seed, fault_schedule=capstone_schedule(seed),
            store=LocalStore(10**8),
        )
        faulted_coord = ShardCoordinator([make_shard(
            seed=seed, fault_schedule=capstone_schedule(seed),
            store=LocalStore(10**8),
        )])
        try:
            for task in TASKS[:2]:
                for key in batch_keys(plain, task):
                    want, _ = plain.get_batch(*key)
                    got, _ = coordinator.get_batch(*key, tenant="t")
                    if want.tobytes() != got.tobytes():
                        out["clean_identical"] = False
                    fwant, _ = faulted_plain.get_batch(*key)
                    fgot, _ = faulted_coord.get_batch(*key, tenant="t")
                    if not (
                        fwant.tobytes() == fgot.tobytes() == want.tobytes()
                    ):
                        out["faulted_identical"] = False
        finally:
            plain.shutdown()
            coordinator.shutdown()
            faulted_plain.shutdown()
            faulted_coord.shutdown()
    return out


def run_experiment():
    return {
        "workload": {
            "shards": SHARDS,
            "tenants": TENANTS,
            "trainers": TENANTS * TRAINERS_PER_TENANT,
            "tasks": len(TASKS),
            "num_videos": NUM_VIDEOS,
            "k_epochs": K_EPOCHS,
            "smoke": SMOKE,
        },
        "fleet": fleet_experiment(),
        "dedup": dedup_experiment(),
        "one_shard_differential": one_shard_differential(),
    }


def test_perf_shard_service(benchmark, emit, results_dir):
    result = once(benchmark, run_experiment)
    fleet = result["fleet"]["fleet"]
    routing = result["fleet"]["routing"]
    dedup = result["dedup"]
    diff = result["one_shard_differential"]

    table = Table(
        "Sharded multi-tenant service under the trainer fleet",
        ["metric", "value"],
    )
    table.add_row("shards", result["workload"]["shards"])
    table.add_row("tenants", result["workload"]["tenants"])
    table.add_row("concurrent trainers", result["workload"]["trainers"])
    table.add_row("batches served", fleet["batches"])
    table.add_row("demand p50 (ms)", round(fleet["latency_s"]["p50"] * 1e3, 3))
    table.add_row("demand p99 (ms)", round(fleet["latency_s"]["p99"] * 1e3, 3))
    table.add_row("throughput (batches/s)", round(fleet["throughput_batches_per_s"], 1))
    for shard_id, share in sorted(routing["utilization"].items()):
        table.add_row(f"utilization {shard_id}", round(share, 3))
    table.add_row("dedup hits (fleet)", routing["dedup_hits"])
    table.add_row("dedup hits (dedup pass)", dedup["dedup_hits"])
    table.add_row(
        "rematerializations by tenants 2..N",
        dedup["demand_materializations_all_passes"]
        - dedup["demand_materializations_first_pass"],
    )
    table.add_row("1-shard identical (3 seeds)", diff["clean_identical"])
    table.add_row("1-shard identical under faults", diff["faulted_identical"])

    # Gates.
    assert fleet["errors"] == [], fleet["errors"]
    assert fleet["stuck_trainers"] == []
    assert fleet["batches"] == (
        result["workload"]["trainers"]
        * K_EPOCHS
        * (NUM_VIDEOS // 2)  # iterations per epoch at videos_per_batch=2
    )
    for tenant_report in fleet["per_tenant"].values():
        assert tenant_report["batches"] > 0  # no tenant starved
    # Cross-shard dedup measurably reduces materialization: the fleet
    # and the dedup pass both hit, and tenants 2..N materialize nothing.
    assert dedup["dedup_hits"] > 0, dedup
    assert (
        dedup["demand_materializations_all_passes"]
        == dedup["demand_materializations_first_pass"]
    ), dedup
    # Zero leaked leases once the fleet drains.
    assert all(
        count == 0 for count in result["fleet"]["leases_outstanding"].values()
    ), result["fleet"]["leases_outstanding"]
    # Sharding is routing, never semantics.
    assert diff["clean_identical"] and diff["faulted_identical"], diff

    if not SMOKE:
        (results_dir / "BENCH_shard_service.json").write_text(
            json.dumps(result, indent=2) + "\n"
        )
    emit("shard_service", table)
