"""Fig 13: two heterogeneous tasks (SlowFast + MAE) sharing one dataset.

Paper: SAND trains 5.3x/6.2x faster than on-demand CPU with 5.4x/8.3x
(vs CPU) and 1.7x/2.5x (vs GPU) higher GPU utilization.  The cross-task
sharing fractions fed into the simulation are *measured* by the
functional planner (the same measurement Fig 16 reports), closing the
loop between the real merging code and the timing model.
"""

from conftest import once

from repro.core import build_plan_window, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table
from repro.simlab.experiments import multi_task


def measure_shares():
    """Measured merged-work fractions for SlowFast-like + MAE-like tasks."""

    def config(tag, frames, stride, samples):
        return load_task_config({
            "dataset": {
                "tag": tag,
                "video_dataset_path": "/d",
                "sampling": {
                    "videos_per_batch": 4,
                    "frames_per_video": frames,
                    "frame_stride": stride,
                    "samples_per_video": samples,
                },
                "augmentation": [
                    {
                        "branch_type": "single",
                        "inputs": ["frame"],
                        "outputs": ["a0"],
                        "config": [
                            {"resize": {"shape": [24, 32]}},
                            {"random_crop": {"size": [16, 16]}},
                            {"flip": {"flip_prob": 0.5}},
                        ],
                    }
                ],
            }
        })

    tasks = [config("slowfast", 8, 2, 1), config("mae", 4, 4, 2)]
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=16, min_frames=60, max_frames=90, seed=2)
    )
    merged = build_plan_window(tasks, dataset, 0, 2, seed=1, coordinated=True)
    indep = build_plan_window(tasks, dataset, 0, 2, seed=1, coordinated=False)
    c, u = merged.operation_counts(), indep.operation_counts()
    aug_ops = ("resize", "random_crop", "flip")
    aug_share = sum(c[op] for op in aug_ops) / sum(u[op] for op in aug_ops)
    decode_share = c["decode"] / u["decode"]
    return aug_share, decode_share


def run_experiment():
    aug_share, decode_share = measure_shares()
    reports = {
        name: multi_task(
            name, epochs=3, iterations_per_epoch=30,
            aug_share=aug_share, decode_share=decode_share,
        )
        for name in ("cpu", "gpu", "sand", "ideal")
    }
    return aug_share, decode_share, reports


def test_fig13_multitask(benchmark, emit):
    aug_share, decode_share, reports = once(benchmark, run_experiment)

    table = Table(
        "Fig 13: SlowFast + MAE concurrently (measured shares: "
        f"aug {aug_share:.2f}, decode {decode_share:.2f})",
        ["pipeline", "slowfast wall", "mae wall", "node GPU util",
         "speedup vs cpu", "util vs cpu (5.4-8.3x)", "util vs gpu (1.7-2.5x)"],
    )
    walls = {k: r.per_task_wall_s for k, r in reports.items()}
    utils = {k: r.gpu_train_util for k, r in reports.items()}
    for name in ("cpu", "gpu", "sand", "ideal"):
        report = reports[name]
        speedups = [walls["cpu"][i] / walls[name][i] for i in range(2)]
        table.add_row(
            name,
            f"{walls[name][0]:.0f}s",
            f"{walls[name][1]:.0f}s",
            f"{utils[name]:.2f}",
            "/".join(f"{s:.1f}x" for s in speedups),
            f"{utils[name] / utils['cpu']:.2f}x",
            f"{utils[name] / utils['gpu']:.2f}x",
        )

    # Shape: SAND beats both baselines on every task and sits near ideal.
    for i in range(2):
        assert walls["cpu"][i] > walls["gpu"][i] > walls["sand"][i]
        assert walls["cpu"][i] / walls["sand"][i] >= 2.0  # paper: 5.3/6.2x
    assert utils["sand"] / utils["cpu"] >= 2.0  # paper: 5.4-8.3x
    assert 1.4 <= utils["sand"] / utils["gpu"] <= 2.6  # paper: 1.7-2.5x
    assert max(walls["sand"]) / max(walls["ideal"]) <= 1.25
    # Sharing measured, not assumed: both fractions strictly below 1.
    assert aug_share < 0.9
    assert decode_share < 0.8

    emit("fig13_multitask", table)
