"""Fig 18: average iteration time with and without priority scheduling.

Paper (MAE): disabling SAND's deadline-priority materialization
scheduling makes iterations 42.6% slower, because subtree jobs complete
out of the order the trainer consumes them, stalling early iterations
while future objects are built.
"""

from conftest import once

from repro.metrics import Table
from repro.simlab.experiments import scheduling_ablation


def run_experiment():
    return scheduling_ablation()


def test_fig18_scheduling(benchmark, emit):
    results = once(benchmark, run_experiment)
    slowdown = results["fifo"] / results["deadline"] - 1

    table = Table(
        "Fig 18: average iteration time, MAE-shaped workload",
        ["policy", "avg iteration", "vs scheduled", "paper"],
    )
    table.add_row("deadline scheduling (SAND)", f"{results['deadline']:.3f}s", "1.00x", "-")
    table.add_row(
        "no scheduling (FIFO)", f"{results['fifo']:.3f}s",
        f"{1 + slowdown:.2f}x", "+42.6%",
    )

    assert results["fifo"] > results["deadline"]
    assert 0.25 <= slowdown <= 0.60, slowdown  # paper: 42.6%

    emit("fig18_scheduling", table)
