"""Fig 15: power consumption of a single-epoch hyperparameter search.

Paper: SAND cuts total energy by 42-82% versus the on-demand CPU
pipeline and 15-38% versus the on-demand GPU pipeline — from eliminating
redundant CPU preprocessing (up to 90% less CPU energy) and from GPUs
idling far less.
"""

from conftest import once

from repro.metrics import Table
from repro.simlab.experiments import ALL_MODELS, run_search


def run_experiment():
    out = {}
    for model in ALL_MODELS:
        out[model] = {
            name: run_search(
                name, model, num_trials=4, gpus=4, max_epochs=1,
                iterations_per_epoch=20, use_asha=False,
            )
            for name in ("cpu", "gpu", "sand")
        }
    return out


def test_fig15_power(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        "Fig 15: energy of a 1-epoch search (4 trials / 4 GPUs)",
        ["model", "cpu kJ", "gpu kJ", "sand kJ",
         "saved vs cpu (42-82%)", "saved vs gpu (15-38%)", "cpu-energy cut"],
    )
    for model, reports in results.items():
        e = {k: r.total_energy_j for k, r in reports.items()}
        cpu_rail = {k: r.energy_j["cpu"] for k, r in reports.items()}
        saved_cpu = 1 - e["sand"] / e["cpu"]
        saved_gpu = 1 - e["sand"] / e["gpu"]
        cpu_cut = 1 - cpu_rail["sand"] / cpu_rail["cpu"]
        table.add_row(
            model,
            f"{e['cpu'] / 1e3:.0f}", f"{e['gpu'] / 1e3:.0f}", f"{e['sand'] / 1e3:.0f}",
            f"{saved_cpu:.0%}", f"{saved_gpu:.0%}", f"{cpu_cut:.0%}",
        )

        assert 0.30 <= saved_cpu <= 0.85, (model, saved_cpu)  # paper: 42-82%
        assert 0.10 <= saved_gpu <= 0.45, (model, saved_gpu)  # paper: 15-38%
        # SAND also slashes CPU-side energy specifically (paper: up to 90%).
        assert cpu_cut >= 0.3, (model, cpu_cut)

    emit("fig15_power", table)
