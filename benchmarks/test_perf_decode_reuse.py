"""Decode reuse vs stateless decoding on repeated sparse access (Fig 3 shape).

The workload is the paper's worst case for on-demand decoding: one video,
eight disjoint sparse windows, each window touching every GOP at a
different depth.  The stateless decoder re-decodes each GOP's anchor
lead-in for every window; the incremental decoder caches anchors and
resumes from the deepest one already decoded.  Results (frames decoded,
bytes read, wall time, per path) are persisted to
``benchmark_results/BENCH_decode_reuse.json`` so future PRs have a perf
trajectory to regress against.

Set ``BENCH_SMOKE=1`` for the CI smoke run (smaller video, same shape).
"""

import json
import os
import time

import numpy as np
from conftest import once

from repro.codec import (
    AnchorCache,
    Decoder,
    IncrementalDecoder,
    SyntheticVideoSource,
    VideoMetadata,
    encode_video,
)
from repro.metrics import Table

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

GOP_SIZE = 30
B_FRAMES = 2
NUM_GOPS = 4 if SMOKE else 8
NUM_FRAMES = GOP_SIZE * NUM_GOPS
WIDTH, HEIGHT = (32, 24) if SMOKE else (64, 48)
NUM_WINDOWS = 8

# Window w touches every GOP at depth offsets[w]: windows are disjoint
# frame sets, but their anchor chains overlap — exactly the repeated
# sparse access pattern of demand feeding racing pre-materialization.
OFFSETS = [26, 23, 20, 17, 14, 11, 8, 5]


def sparse_windows():
    return [
        [g * GOP_SIZE + OFFSETS[w] for g in range(NUM_GOPS)]
        for w in range(NUM_WINDOWS)
    ]


def encoded_video():
    md = VideoMetadata(
        "bench", width=WIDTH, height=HEIGHT, num_frames=NUM_FRAMES,
        fps=30.0, gop_size=GOP_SIZE, b_frames=B_FRAMES,
    )
    return encode_video(SyntheticVideoSource(md))


def run_experiment():
    data = encoded_video()
    windows = sparse_windows()

    # Stateless baseline: nothing survives a call (on-demand semantics).
    baseline = Decoder(data)
    start = time.perf_counter()
    baseline_out = [baseline.decode_frames(w) for w in windows]
    baseline_wall = time.perf_counter() - start

    # Reuse path: one incremental decoder with a shared anchor cache.
    reuse = IncrementalDecoder(data, cache=AnchorCache(256 * 1024 * 1024))
    start = time.perf_counter()
    reuse_out = [reuse.decode_frames(w) for w in windows]
    reuse_wall = time.perf_counter() - start

    # Pixel exactness: the reuse path must be byte-identical.
    for window, base_frames, reuse_frames in zip(windows, baseline_out, reuse_out):
        for idx in window:
            assert np.array_equal(base_frames[idx], reuse_frames[idx]), idx

    def snapshot(stats, wall):
        return {
            "frames_requested": stats.frames_requested,
            "frames_decoded": stats.frames_decoded,
            "frames_reused_from_anchor_cache": stats.frames_reused_from_anchor_cache,
            "bytes_read": stats.bytes_read,
            "wall_time_s": round(wall, 6),
            "amplification": round(stats.amplification, 4),
        }

    return {
        "workload": {
            "num_frames": NUM_FRAMES,
            "gop_size": GOP_SIZE,
            "b_frames": B_FRAMES,
            "resolution": [WIDTH, HEIGHT],
            "windows": NUM_WINDOWS,
            "frames_per_window": NUM_GOPS,
            "smoke": SMOKE,
        },
        "baseline_stateless": snapshot(baseline.stats, baseline_wall),
        "reuse_incremental": snapshot(reuse.stats, reuse_wall),
        "decode_reduction_x": round(
            baseline.stats.frames_decoded / max(1, reuse.stats.frames_decoded), 4
        ),
        "bytes_reduction_x": round(
            baseline.stats.bytes_read / max(1, reuse.stats.bytes_read), 4
        ),
    }


def test_perf_decode_reuse(benchmark, emit, results_dir):
    result = once(benchmark, run_experiment)
    base = result["baseline_stateless"]
    reuse = result["reuse_incremental"]

    table = Table(
        "Decode reuse: repeated sparse windows, stateless vs anchor cache",
        ["path", "frames decoded", "frames reused", "bytes read", "wall time (s)"],
    )
    table.add_row(
        "stateless", base["frames_decoded"], base["frames_reused_from_anchor_cache"],
        base["bytes_read"], base["wall_time_s"],
    )
    table.add_row(
        "anchor cache", reuse["frames_decoded"],
        reuse["frames_reused_from_anchor_cache"],
        reuse["bytes_read"], reuse["wall_time_s"],
    )
    table.add_row(
        "reduction", f"{result['decode_reduction_x']}x", "-",
        f"{result['bytes_reduction_x']}x", "-",
    )

    # The acceptance bar: reuse decodes at least 2x fewer frames.
    assert base["frames_decoded"] >= 2 * reuse["frames_decoded"]
    assert reuse["frames_reused_from_anchor_cache"] > 0
    assert base["bytes_read"] > reuse["bytes_read"]

    (results_dir / "BENCH_decode_reuse.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    emit("decode_reuse", table)
