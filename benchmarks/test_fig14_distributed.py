"""Fig 14: distributed data-parallel training with remote storage.

Paper: two nodes train SlowFast against a Filestore dataset across a
WAN; SAND is 5.2x faster than the on-demand CPU baseline (from 5.2x
higher GPU utilization) and moves only ~3% of the baseline's network
traffic, because encoded videos cross the WAN once and everything else
is served from the local materialized cache.
"""

from conftest import once

from repro.metrics import Table
from repro.simlab.experiments import distributed_remote


def run_experiment():
    return {
        name: distributed_remote(
            name, model_key="slowfast", nodes=2, epochs=20, iterations_per_epoch=20
        )
        for name in ("cpu", "sand")
    }


def test_fig14_distributed(benchmark, emit):
    reports = once(benchmark, run_experiment)
    cpu, sand = reports["cpu"], reports["sand"]
    speedup = cpu.wall_s / sand.wall_s
    util_ratio = sand.gpu_train_util / cpu.gpu_train_util
    traffic = sand.remote_bytes / cpu.remote_bytes

    table = Table(
        "Fig 14: 2-node DDP, dataset behind a WAN (SlowFast, 20 epochs)",
        ["pipeline", "wall", "GPU util", "WAN traffic", "vs baseline"],
    )
    table.add_row("on-demand CPU", f"{cpu.wall_s:.0f}s", f"{cpu.gpu_train_util:.2f}",
                  f"{cpu.remote_bytes / 1e9:.1f} GB", "1.00x")
    table.add_row("SAND", f"{sand.wall_s:.0f}s", f"{sand.gpu_train_util:.2f}",
                  f"{sand.remote_bytes / 1e9:.1f} GB",
                  f"{speedup:.2f}x faster, {traffic:.1%} of traffic")
    table.add_row("paper", "-", "-", "-", "5.2x faster, ~3% of traffic")

    # Shape: large speedup driven by utilization; traffic collapses.
    assert speedup >= 2.0  # paper: 5.2x
    assert util_ratio >= 2.0
    assert traffic <= 0.10  # paper: ~3%; falls as 1/epochs
    assert abs(speedup - util_ratio) / speedup < 0.25  # speedup ~ util gain

    emit("fig14_distributed", table)
