"""Fig 5: component-wise energy of on-demand-CPU training.

The paper attributes 41.6% of total training energy to the CPU under
the on-demand CPU pipeline, most of it decoding — the energy face of the
repeated-decoding problem.
"""

from conftest import once

from repro.metrics import Table
from repro.simlab.experiments import ALL_MODELS, single_task


def run_experiment():
    out = {}
    for model in ALL_MODELS:
        reports = single_task(
            model, strategies=("cpu",), epochs=1, iterations_per_epoch=30
        )
        out[model] = reports["cpu"].energy_j
    return out


def test_fig05_energy_breakdown(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        "Fig 5: energy breakdown, on-demand CPU pipeline (paper: CPU = 41.6%)",
        ["model", "cpu", "gpu", "dram+ssd", "cpu fraction"],
    )
    for model, energy in results.items():
        total = sum(energy.values())
        cpu_fraction = energy["cpu"] / total
        other = energy.get("dram", 0) + energy.get("ssd", 0)
        table.add_row(
            model,
            f"{energy['cpu'] / 1e3:.1f} kJ",
            f"{energy['gpu'] / 1e3:.1f} kJ",
            f"{other / 1e3:.1f} kJ",
            f"{cpu_fraction:.1%}",
        )
        # The CPU is a major consumer, in the paper's ~40% neighbourhood.
        assert 0.25 <= cpu_fraction <= 0.55, (model, cpu_fraction)

    emit("fig05_energy_breakdown", table)
