"""Ablation: which coordination mechanism buys which reuse (S5.2).

The shared frame pool (temporal) and the shared crop window (spatial)
attack different redundancy: the pool merges decoded frames, the window
merges augmented frames.  Toggling them independently on the real
planner shows each mechanism's contribution.  Not a paper figure —
DESIGN.md lists this as a design-choice ablation.
"""

from conftest import once

from repro.core import build_plan_window, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table

MODES = {
    "none": dict(coordinate_temporal=False, coordinate_spatial=False),
    "pool only": dict(coordinate_temporal=True, coordinate_spatial=False),
    "window only": dict(coordinate_temporal=False, coordinate_spatial=True),
    "both (SAND)": dict(coordinate_temporal=True, coordinate_spatial=True),
}


def make_tasks():
    def config(tag, frames, stride, samples):
        return load_task_config({
            "dataset": {
                "tag": tag,
                "video_dataset_path": "/d",
                "sampling": {
                    "videos_per_batch": 4,
                    "frames_per_video": frames,
                    "frame_stride": stride,
                    "samples_per_video": samples,
                },
                "augmentation": [
                    {
                        "branch_type": "single",
                        "inputs": ["frame"],
                        "outputs": ["a0"],
                        "config": [
                            {"resize": {"shape": [24, 32]}},
                            {"random_crop": {"size": [16, 16]}},
                        ],
                    }
                ],
            }
        })

    return [config("a", 8, 2, 1), config("b", 4, 4, 2)]


def run_experiment():
    tasks = make_tasks()
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=12, min_frames=60, max_frames=90, seed=2)
    )
    out = {}
    for label, flags in MODES.items():
        plan = build_plan_window(tasks, dataset, 0, 2, seed=1, **flags)
        out[label] = plan.operation_counts()
    return out


def test_ablation_coordination(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        "Ablation: coordination mechanisms vs unique operations",
        ["mode", "decode", "resize", "random_crop"],
    )
    for label, counts in results.items():
        table.add_row(label, counts["decode"], counts["resize"], counts["random_crop"])

    none = results["none"]
    pool = results["pool only"]
    both = results["both (SAND)"]

    # The frame pool is what merges decodes.
    assert pool["decode"] < none["decode"]
    # Spatial coordination alone cannot merge aug nodes across tasks
    # unless the frames already coincide, so full crop reduction needs
    # both mechanisms together.
    assert both["random_crop"] < pool["random_crop"]
    assert both["random_crop"] <= results["window only"]["random_crop"]
    # Full coordination dominates every partial mode on every op.
    for label, counts in results.items():
        for op in ("decode", "resize", "random_crop"):
            assert both[op] <= counts[op], (label, op)

    emit("ablation_coordination", table)
