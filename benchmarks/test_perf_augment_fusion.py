"""Augmentation fusion vs step-by-step execution (Fig 16 / S5.2 shape).

The workload is the canonical training chain — random_crop -> resize ->
flip -> normalize — run through the full engine (decode, materialize,
collate) twice: once with the plan compiler fusing each chain into a
single index-gather pass with a normalize epilogue written straight into
the preallocated batch, and once unfused, one full-clip pass per op.

Both paths must produce byte-identical batches; the memory-traffic
ledger must show the fused path making at least 2x fewer full-clip
passes and copying at least 40% fewer bytes.  Results are persisted to
``benchmark_results/BENCH_augment_fusion.json``; when the committed
baseline describes the same workload, passes-per-clip is a regression
gate — more passes than the baseline fails the run.

Set ``BENCH_SMOKE=1`` for the CI smoke run (smaller window, same shape).
"""

import json
import os
import time

import numpy as np
from conftest import once

from repro.core import PreprocessingEngine, build_plan_window, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

NUM_VIDEOS = 6 if SMOKE else 12
NUM_ITERATIONS = 2 if SMOKE else 4
WIDTH, HEIGHT = (64, 48) if SMOKE else (128, 96)
VIDEOS_PER_BATCH = 2
FRAMES_PER_VIDEO = 4


def make_config():
    return load_task_config({
        "dataset": {
            "tag": "bench",
            "video_dataset_path": "/d",
            "sampling": {
                "videos_per_batch": VIDEOS_PER_BATCH,
                "frames_per_video": FRAMES_PER_VIDEO,
                "frame_stride": 2,
            },
            "augmentation": [
                {
                    "branch_type": "single",
                    "inputs": ["frame"],
                    "outputs": ["a0"],
                    "config": [
                        {"random_crop": {"size": [HEIGHT - 8, WIDTH - 8]}},
                        {"resize": {"shape": [32, 32]}},
                        {"flip": {"flip_prob": 0.5}},
                        {"normalize": None},
                    ],
                }
            ],
        }
    })


def run_experiment():
    dataset = SyntheticDataset(
        DatasetSpec(
            num_videos=NUM_VIDEOS, min_frames=30, max_frames=45,
            width=WIDTH, height=HEIGHT, seed=3,
        )
    )
    plan = build_plan_window([make_config()], dataset, 0, NUM_ITERATIONS, seed=5)
    num_clips = len(plan.batches) * VIDEOS_PER_BATCH

    def serve(fusion_enabled):
        engine = PreprocessingEngine(
            plan, dataset, num_workers=0, fusion_enabled=fusion_enabled
        )
        start = time.perf_counter()
        batches = {
            key: engine.get_batch(*key)[0] for key in sorted(plan.batches)
        }
        wall = time.perf_counter() - start
        return engine.stats, batches, wall

    fused_stats, fused_batches, fused_wall = serve(True)
    unfused_stats, unfused_batches, unfused_wall = serve(False)

    # Fusion is an execution detail: batches must be byte-identical.
    for key in unfused_batches:
        assert np.array_equal(fused_batches[key], unfused_batches[key]), key

    def snapshot(stats, wall):
        t = stats.traffic
        return {
            "clip_passes": t.clip_passes,
            "passes_per_clip": round(t.clip_passes / num_clips, 4),
            "bytes_allocated": t.bytes_allocated,
            "bytes_copied": t.bytes_copied,
            "fused_segments": t.fused_segments,
            "identity_skips": t.identity_skips,
            "wall_time_s": round(wall, 6),
        }

    fused = snapshot(fused_stats, fused_wall)
    unfused = snapshot(unfused_stats, unfused_wall)
    return {
        "workload": {
            "num_videos": NUM_VIDEOS,
            "iterations": NUM_ITERATIONS,
            "resolution": [WIDTH, HEIGHT],
            "videos_per_batch": VIDEOS_PER_BATCH,
            "frames_per_video": FRAMES_PER_VIDEO,
            "num_clips": num_clips,
            "chain": ["random_crop", "resize", "flip", "normalize"],
            "smoke": SMOKE,
        },
        "fused": fused,
        "unfused": unfused,
        "pass_reduction_x": round(
            unfused["clip_passes"] / max(1, fused["clip_passes"]), 4
        ),
        "bytes_copied_reduction_x": round(
            unfused["bytes_copied"] / max(1, fused["bytes_copied"]), 4
        ),
    }


def test_perf_augment_fusion(benchmark, emit, results_dir):
    result = once(benchmark, run_experiment)
    fused = result["fused"]
    unfused = result["unfused"]

    table = Table(
        "Augmentation fusion: full-clip passes and copied bytes per path",
        ["path", "passes/clip", "bytes copied", "bytes allocated", "wall time (s)"],
    )
    table.add_row(
        "unfused", unfused["passes_per_clip"], unfused["bytes_copied"],
        unfused["bytes_allocated"], unfused["wall_time_s"],
    )
    table.add_row(
        "fused", fused["passes_per_clip"], fused["bytes_copied"],
        fused["bytes_allocated"], fused["wall_time_s"],
    )
    table.add_row(
        "reduction", f"{result['pass_reduction_x']}x",
        f"{result['bytes_copied_reduction_x']}x", "-", "-",
    )

    # The acceptance bar: >=2x fewer full-clip passes, >=40% fewer
    # bytes copied, and the same logical op counts either way.
    assert unfused["clip_passes"] >= 2 * fused["clip_passes"]
    assert fused["bytes_copied"] <= 0.6 * unfused["bytes_copied"]
    assert fused["fused_segments"] > 0

    # Regression gate: never do more passes per clip than the committed
    # baseline.  Passes-per-clip depends on the chain and sampling shape,
    # not on resolution or window size, so the smoke run gates against
    # the committed full-size baseline too.
    gate_keys = ("chain", "videos_per_batch", "frames_per_video")
    baseline_path = results_dir / "BENCH_augment_fusion.json"
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        base_workload = baseline.get("workload", {})
        if all(base_workload.get(k) == result["workload"][k] for k in gate_keys):
            assert (
                fused["passes_per_clip"] <= baseline["fused"]["passes_per_clip"]
            ), (
                "fused passes-per-clip regressed: "
                f"{fused['passes_per_clip']} > baseline "
                f"{baseline['fused']['passes_per_clip']}"
            )

    if not SMOKE:  # the committed baseline is the full-size workload
        baseline_path.write_text(json.dumps(result, indent=2) + "\n")
    emit("augment_fusion", table)
