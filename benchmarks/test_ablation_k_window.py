"""Ablation: the k-epoch window size (S5.2's amortization knob).

SAND decodes each video once per k-epoch window.  Larger k amortizes
decode further (less background CPU per epoch) at the cost of holding
a window's materializations longer; the benefit saturates once decode
stops being the background bottleneck.  Not a paper figure — DESIGN.md
lists this as a design-choice ablation.
"""

from conftest import once

from repro.metrics import Table
from repro.simlab import SandStrategy, Workload, run_training

K_VALUES = (1, 2, 5, 10)


def run_experiment():
    out = {}
    for k in K_VALUES:
        workload = Workload.of("slowfast")
        strategy = SandStrategy(workload, k_epochs=k)
        report = run_training([strategy], epochs=4, iterations_per_epoch=25)
        out[k] = (report, workload.sand_premat_cpu_s_per_video(k))
    return out


def test_ablation_k_window(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        "Ablation: pre-materialization window size k (SlowFast)",
        ["k", "time/iter", "GPU util", "bg CPU s/video/epoch", "cache writes"],
    )
    for k, (report, premat_s) in results.items():
        table.add_row(
            k,
            f"{report.time_per_iteration:.3f}s",
            f"{report.gpu_train_util:.2f}",
            f"{premat_s:.3f}",
            f"{report.disk_read_bytes / 1e9:.1f} GB read",
        )

    # Background work per epoch strictly decreases with k...
    premats = [results[k][1] for k in K_VALUES]
    assert all(a > b for a, b in zip(premats, premats[1:]))
    # ...and iteration time / utilization improve monotonically (weakly)
    # until saturation near the ideal.
    times = [results[k][0].time_per_iteration for k in K_VALUES]
    assert all(a >= b * 0.999 for a, b in zip(times, times[1:]))
    assert results[10][0].gpu_train_util >= results[1][0].gpu_train_util

    emit("ablation_k_window", table)
