"""Table 3: lines of code for video preprocessing.

Paper: 2254 LoC (SlowFast) and 297 LoC (HD-VILA) of manual preprocessing
reduce to 8 and 7 LoC with SAND.  Measured here on this repo's bundled
examples: the manual-pipeline foil implements decode/select/augment/
load/collate by hand; the quickstart's ``__getitem__`` uses SAND views.
Both regions are delimited by explicit markers and counted as logical
LoC (blanks/comments/docstrings excluded).
"""

from pathlib import Path

from conftest import once

from repro.metrics import Table, count_preprocessing_loc

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_experiment():
    manual = count_preprocessing_loc(EXAMPLES / "manual_pipeline_slowfast.py")
    sand = count_preprocessing_loc(EXAMPLES / "quickstart.py")
    return manual, sand


def test_table3_loc(benchmark, emit):
    manual, sand = once(benchmark, run_experiment)

    table = Table(
        "Table 3: preprocessing lines of code",
        ["pipeline", "LoC", "paper (SlowFast)", "paper (HD-VILA)"],
    )
    table.add_row("manual implementation", manual, "2254", "297")
    table.add_row("with SAND abstractions", sand, "8", "7")
    table.add_row("reduction", f"{manual / sand:.0f}x", "282x", "42x")

    # Shape: manual preprocessing is a real pipeline (hundreds of lines
    # at HD-VILA scale); the SAND version is under ten.
    assert manual >= 120
    assert sand <= 10
    assert manual / sand >= 15

    emit("table3_loc", table)
