"""Codec-signal reuse on the long-GOP, low-motion profile.

Two experiments, persisted to ``benchmark_results/BENCH_codec_signals.json``:

* **Near-duplicate reuse** — repeated sparse windows over a long-GOP
  (48), low-motion video.  The stateless baseline re-decodes every
  anchor lead-in per window; anchor caching alone removes the repeats;
  the signal path additionally collapses near-duplicate frames onto
  their effective anchors, so only anchors are ever decoded.  The bar:
  >= 4x fewer frames decoded than the no-cache baseline (anchor caching
  alone measures ~3.3x on this shape).
* **Oracle-vs-LRU ablation** — the identical cyclic access stream driven
  through two AnchorCaches at the *same* byte budget, one LRU, one with
  the exact next-use oracle.  A cyclic scan one entry wider than the
  budget is LRU's classic pathology (0% hit rate); Belady keeps a stable
  subset.  Clairvoyant must strictly dominate.

Set ``BENCH_SMOKE=1`` for the CI smoke run (smaller video, same shape).
"""

import json
import os
import time

import numpy as np
from conftest import once

from repro.codec import (
    AnchorCache,
    Decoder,
    FrameSignals,
    IncrementalDecoder,
    SyntheticVideoSource,
    VideoMetadata,
    encode_video,
)
from repro.core import oracle_from_accesses
from repro.metrics import Table

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

GOP_SIZE = 48
B_FRAMES = 3
NUM_GOPS = 2 if SMOKE else 4
NUM_FRAMES = GOP_SIZE * NUM_GOPS
WIDTH, HEIGHT = (32, 24) if SMOKE else (64, 48)
NUM_WINDOWS = 8
# Calibrated: motion_scale 0.2 / noise 0 measures inter-frame deltas
# ~0.8-1.0 on this content; threshold 2.0 collapses every non-anchor.
MOTION_SCALE = 0.2
REUSE_THRESHOLD = 2.0

# Window w touches every GOP at depth OFFSETS[w] — disjoint frame sets
# whose anchor chains overlap (the Fig 3 repeated sparse access shape).
OFFSETS = [42, 37, 31, 26, 21, 15, 10, 5]


def sparse_windows():
    return [
        [g * GOP_SIZE + OFFSETS[w] for g in range(NUM_GOPS)]
        for w in range(NUM_WINDOWS)
    ]


def encoded_video():
    md = VideoMetadata(
        "bench_lowmo", width=WIDTH, height=HEIGHT, num_frames=NUM_FRAMES,
        fps=30.0, gop_size=GOP_SIZE, b_frames=B_FRAMES,
    )
    return encode_video(
        SyntheticVideoSource(md, motion_scale=MOTION_SCALE, noise_scale=0.0)
    )


def snapshot(stats, wall):
    return {
        "frames_requested": stats.frames_requested,
        "frames_decoded": stats.frames_decoded,
        "frames_reused_from_anchor_cache": stats.frames_reused_from_anchor_cache,
        "frames_skipped_near_duplicate": stats.frames_skipped_near_duplicate,
        "bytes_read": stats.bytes_read,
        "wall_time_s": round(wall, 6),
    }


def run_reuse_experiment():
    data = encoded_video()
    windows = sparse_windows()
    signals = FrameSignals.from_container(data)
    low_motion = signals.low_motion_fraction(REUSE_THRESHOLD)

    # No-cache baseline: stateless decode per window.
    baseline = Decoder(data)
    start = time.perf_counter()
    baseline_out = [baseline.decode_frames(w) for w in windows]
    baseline_wall = time.perf_counter() - start

    # Anchor caching alone (the pre-signal state of the art here).
    cache_only = IncrementalDecoder(data, cache=AnchorCache(256 * 1024 * 1024))
    start = time.perf_counter()
    for w in windows:
        cache_only.decode_frames(w)
    cache_only_wall = time.perf_counter() - start

    # Signal path: anchor caching + near-duplicate collapse.
    signal = IncrementalDecoder(
        data, cache=AnchorCache(256 * 1024 * 1024),
        reuse_threshold=REUSE_THRESHOLD,
    )
    start = time.perf_counter()
    signal_out = [signal.decode_frames(w) for w in windows]
    signal_wall = time.perf_counter() - start

    # Exactness: every returned frame is the reference decode of its
    # effective (threshold-collapsed) index.
    eff = signals.effective_map(REUSE_THRESHOLD)
    reference = Decoder(data).decode_frames(range(NUM_FRAMES))
    for window, base_frames, sig_frames in zip(windows, baseline_out, signal_out):
        for idx in window:
            assert np.array_equal(base_frames[idx], reference[idx]), idx
            assert np.array_equal(sig_frames[idx], reference[eff[idx]]), idx

    return {
        "low_motion_fraction": round(low_motion, 4),
        "baseline_stateless": snapshot(baseline.stats, baseline_wall),
        "anchor_cache_only": snapshot(cache_only.stats, cache_only_wall),
        "signal_reuse": snapshot(signal.stats, signal_wall),
        "cache_only_reduction_x": round(
            baseline.stats.frames_decoded
            / max(1, cache_only.stats.frames_decoded), 4
        ),
        "signal_reduction_x": round(
            baseline.stats.frames_decoded
            / max(1, signal.stats.frames_decoded), 4
        ),
    }


# -- oracle vs LRU ablation -------------------------------------------------------

ABLATION_GOP = 4        # gop == anchor step: every anchor is an I frame,
ABLATION_B = 3          # so each request decodes exactly one frame.
ABLATION_ANCHORS = 8 if SMOKE else 16
ABLATION_ROUNDS = 4 if SMOKE else 6


def run_ablation(use_oracle):
    md = VideoMetadata(
        "bench_cyclic", width=WIDTH, height=HEIGHT,
        num_frames=ABLATION_GOP * ABLATION_ANCHORS,
        fps=30.0, gop_size=ABLATION_GOP, b_frames=ABLATION_B,
    )
    data = encode_video(SyntheticVideoSource(md))
    accesses = [
        [ABLATION_GOP * (t % ABLATION_ANCHORS)]
        for t in range(ABLATION_ANCHORS * ABLATION_ROUNDS)
    ]
    frame_bytes = WIDTH * HEIGHT * 3
    budget = frame_bytes * (ABLATION_ANCHORS - 1)  # one entry short: LRU thrashes
    cache = AnchorCache(budget)
    if use_oracle:
        cache.set_oracle(oracle_from_accesses(md, accesses))
    dec = IncrementalDecoder(data, cache=cache)
    for step, frames in enumerate(accesses):
        cache.advance(step)
        dec.decode_frames(frames)
    report = cache.report()
    return {
        "policy": "clairvoyant" if use_oracle else "lru",
        "budget_entries": ABLATION_ANCHORS - 1,
        "stream_entries": ABLATION_ANCHORS,
        "steps": len(accesses),
        "frames_decoded": dec.stats.frames_decoded,
        "cache_hits": report["hits"],
        "evictions": report["evictions"],
    }


def run_experiment():
    reuse = run_reuse_experiment()
    lru = run_ablation(use_oracle=False)
    oracle = run_ablation(use_oracle=True)
    return {
        "workload": {
            "num_frames": NUM_FRAMES,
            "gop_size": GOP_SIZE,
            "b_frames": B_FRAMES,
            "resolution": [WIDTH, HEIGHT],
            "windows": NUM_WINDOWS,
            "motion_scale": MOTION_SCALE,
            "reuse_threshold": REUSE_THRESHOLD,
            "smoke": SMOKE,
        },
        "near_duplicate_reuse": reuse,
        "eviction_ablation": {"lru": lru, "clairvoyant": oracle},
    }


def test_perf_codec_signals(benchmark, emit, results_dir):
    result = once(benchmark, run_experiment)
    reuse = result["near_duplicate_reuse"]
    base = reuse["baseline_stateless"]
    cache_only = reuse["anchor_cache_only"]
    signal = reuse["signal_reuse"]
    lru = result["eviction_ablation"]["lru"]
    oracle = result["eviction_ablation"]["clairvoyant"]

    table = Table(
        "Near-duplicate reuse: long-GOP low-motion sparse windows",
        ["path", "frames decoded", "reused", "near-dup skipped", "reduction"],
    )
    table.add_row(
        "stateless", base["frames_decoded"],
        base["frames_reused_from_anchor_cache"],
        base["frames_skipped_near_duplicate"], "1.0x",
    )
    table.add_row(
        "anchor cache", cache_only["frames_decoded"],
        cache_only["frames_reused_from_anchor_cache"],
        cache_only["frames_skipped_near_duplicate"],
        f"{reuse['cache_only_reduction_x']}x",
    )
    table.add_row(
        "signal reuse", signal["frames_decoded"],
        signal["frames_reused_from_anchor_cache"],
        signal["frames_skipped_near_duplicate"],
        f"{reuse['signal_reduction_x']}x",
    )

    ablation = Table(
        "Eviction ablation: cyclic anchor scan at equal byte budget",
        ["policy", "frames decoded", "cache hits", "evictions"],
    )
    ablation.add_row(
        "LRU", lru["frames_decoded"], lru["cache_hits"], lru["evictions"]
    )
    ablation.add_row(
        "clairvoyant", oracle["frames_decoded"], oracle["cache_hits"],
        oracle["evictions"],
    )

    # Acceptance bars.
    assert reuse["signal_reduction_x"] >= 4.0, reuse["signal_reduction_x"]
    assert signal["frames_skipped_near_duplicate"] > 0
    # Clairvoyant strictly dominates LRU on the identical stream/budget.
    assert oracle["frames_decoded"] < lru["frames_decoded"], (oracle, lru)
    assert oracle["cache_hits"] > lru["cache_hits"]

    (results_dir / "BENCH_codec_signals.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    emit("codec_signals", table, ablation)
