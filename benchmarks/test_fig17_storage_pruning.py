"""Fig 17: preprocessing time under different storage budgets.

Paper (SlowFast + MAE): with object-graph pruning, recomputation drops
by ~10% at 3 TB and ~25% at 1.5 TB versus naively caching only final
training batches.  Measured here on the real planner and Algorithm 1,
with budgets scaled to this repo's dataset the way 1.5/3 TB relate to
Kinetics-400: the larger budget holds most (but not all) leaves, the
smaller one half of that.
"""

from conftest import once

from repro.core import (
    build_plan_window,
    load_task_config,
    naive_budgeted_leaves,
    prune_plan,
)
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table


def make_plan():
    def config(tag, frames, stride, samples):
        return load_task_config({
            "dataset": {
                "tag": tag,
                "video_dataset_path": "/d",
                "sampling": {
                    "videos_per_batch": 4,
                    "frames_per_video": frames,
                    "frame_stride": stride,
                    "samples_per_video": samples,
                },
                "augmentation": [
                    {
                        "branch_type": "single",
                        "inputs": ["frame"],
                        "outputs": ["a0"],
                        "config": [
                            {"resize": {"shape": [24, 32]}},
                            {"random_crop": {"size": [16, 16]}},
                        ],
                    }
                ],
            }
        })

    tasks = [config("slowfast", 8, 2, 1), config("mae", 4, 4, 2)]
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=16, min_frames=60, max_frames=90, seed=2)
    )
    return build_plan_window(tasks, dataset, 0, 3, seed=1)


def run_experiment():
    plan = make_plan()
    total = plan.total_cached_bytes()
    budgets = {"3TB-equivalent": total * 0.8, "1.5TB-equivalent": total * 0.4}
    rows = {}
    for label, budget in budgets.items():
        pruned = prune_plan(plan, budget)
        naive = naive_budgeted_leaves(plan, budget)
        rows[label] = (pruned, naive)
    return rows


def test_fig17_storage_pruning(benchmark, emit):
    rows = once(benchmark, run_experiment)

    table = Table(
        "Fig 17: feed-time recomputation vs storage budget (SlowFast+MAE)",
        ["budget", "naive recompute", "pruned recompute", "reduction", "paper"],
    )
    paper = {"3TB-equivalent": "10%", "1.5TB-equivalent": "25%"}
    reductions = {}
    for label, (pruned, naive) in rows.items():
        reduction = 1 - pruned.total_recompute_s / naive.total_recompute_s
        reductions[label] = reduction
        table.add_row(
            label,
            f"{naive.total_recompute_s * 1e3:.1f} ms",
            f"{pruned.total_recompute_s * 1e3:.1f} ms",
            f"{reduction:.1%}",
            paper[label],
        )
        assert pruned.met_budget
        assert pruned.final_bytes <= naive.budget_bytes

    # Shape: pruning always helps, and helps more when storage is tighter.
    assert reductions["3TB-equivalent"] > 0.0
    assert reductions["1.5TB-equivalent"] > reductions["3TB-equivalent"]
    assert reductions["1.5TB-equivalent"] >= 0.12

    emit("fig17_storage_pruning", table)
