"""Ablation: deadline-aware eviction vs FIFO (S6's cache policy).

Under a cache too small for the whole window, SAND evicts used-up
objects first and longest-deadline objects second, keeping soon-needed
objects resident.  A FIFO policy evicts exactly the objects about to be
consumed (they were produced just ahead of use), forcing demand
rematerialization.  Not a paper figure — DESIGN.md lists the eviction
order as a design choice worth ablating.
"""

from conftest import once

from repro.core import (
    CacheManager,
    PreprocessingEngine,
    build_plan_window,
    load_task_config,
    prune_plan,
)
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table
from repro.storage.local import LocalStore


def make_setup():
    config = load_task_config({
        "dataset": {
            "tag": "t",
            "video_dataset_path": "/d",
            "sampling": {"videos_per_batch": 4, "frames_per_video": 6, "frame_stride": 2},
            "augmentation": [
                {
                    "branch_type": "single",
                    "inputs": ["frame"],
                    "outputs": ["a0"],
                    "config": [{"resize": {"shape": [18, 24]}}],
                }
            ],
        }
    })
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=12, min_frames=40, max_frames=55, seed=7)
    )
    return config, dataset


def replay(policy: str):
    """Pre-materialize everything, then replay the epoch twice.

    The second pass measures how much of the window survived in cache:
    with good eviction the still-needed objects are the survivors.
    """
    config, dataset = make_setup()
    plan = build_plan_window([config], dataset, 0, 2, seed=3)
    pruning = prune_plan(plan, plan.total_cached_bytes())
    # Cache holds ~45% of the window's materializations.
    store = LocalStore(int(plan.total_cached_bytes() * 0.45))
    cache = CacheManager(store, policy=policy)
    cache.register_plan(plan, pruning)
    filler = PreprocessingEngine(plan, dataset, pruning=pruning, cache=cache,
                                 num_workers=0)
    filler.drain()  # fill the cache under pressure

    # Replay epoch 0 through a fresh engine (cold memory, warm cache):
    # every sample not in cache is a demand rematerialization.
    replayer = PreprocessingEngine(plan, dataset, pruning=pruning, cache=cache,
                                   num_workers=0)
    for iteration in range(plan.iterations_per_epoch["t"]):
        replayer.get_batch("t", 0, iteration)
    return replayer.stats.demand_materializations, cache.evictions


def run_experiment():
    return {policy: replay(policy) for policy in ("deadline", "fifo")}


def test_ablation_eviction(benchmark, emit):
    results = once(benchmark, run_experiment)

    table = Table(
        "Ablation: cache eviction policy under pressure (45% of window)",
        ["policy", "demand rematerializations", "evictions"],
    )
    for policy, (demand, evictions) in results.items():
        table.add_row(policy, demand, evictions)

    deadline_demand, _ = results["deadline"]
    fifo_demand, _ = results["fifo"]
    # Deadline awareness keeps soon-needed objects resident.
    assert deadline_demand <= fifo_demand
    assert fifo_demand > 0  # the pressure is real

    emit("ablation_eviction", table)
