"""The async zero-copy data plane: delivery copies and demand latency.

Two experiments over the same plan window:

* **Delivery copies** — a trainer reads the window through the
  in-process :class:`LocalClient` lease path.  The gate requires the
  trainer-boundary copy ledger to read exactly zero bytes per batch:
  the fused epilogue writes into the pooled delivery buffer and the
  trainer borrows that buffer directly.
* **Concurrent demand latency** — 32 trainer replicas read every batch
  of a drained window over the Unix-socket wire protocol, each paced by
  a simulated GPU step (1.5x the mean synchronous assembly time, the
  same pacing convention as the prefetch benchmark).  The baseline is
  today's single synchronous caller assembling each batch on demand on
  its own thread.  The gate requires p50 and p99 per-request latency
  under 32-way concurrency to be no worse than the single-caller sync
  path: the event loop overlaps requests across the executor and sends
  pooled memoryviews, so piling on trainers must not push even tail
  latency past what one trainer already pays today.

Results persist to ``benchmark_results/BENCH_dataplane.json`` as the
regression baseline.  Set ``BENCH_SMOKE=1`` for the CI smoke run.
"""

import json
import os
import threading
import time

import numpy as np
from conftest import once

from repro.core import (
    AsyncBatchServer,
    BatchSocketClient,
    LocalClient,
    PreprocessingEngine,
    build_plan_window,
    load_task_config,
)
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.metrics import Table

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

NUM_VIDEOS = 8 if SMOKE else 12
TRAINERS = 8 if SMOKE else 32
K_EPOCHS = 2


def make_config():
    return load_task_config({
        "dataset": {
            "tag": "t",
            "video_dataset_path": "/d",
            "sampling": {
                "videos_per_batch": 4,
                "frames_per_video": 6,
                "frame_stride": 2,
            },
            "augmentation": [
                {
                    "branch_type": "single",
                    "inputs": ["frame"],
                    "outputs": ["a0"],
                    "config": [
                        {"resize": {"shape": [32, 44]}},
                        {"random_crop": {"size": [28, 28]}},
                        {"flip": {"flip_prob": 0.5}},
                    ],
                }
            ],
        }
    })


def make_dataset():
    return SyntheticDataset(
        DatasetSpec(
            num_videos=NUM_VIDEOS, min_frames=40, max_frames=60,
            width=64, height=48, seed=3,
        )
    )


def percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def zero_copy_experiment():
    dataset = make_dataset()
    plan = build_plan_window([make_config()], dataset, 0, K_EPOCHS, seed=5)
    engine = PreprocessingEngine(plan, dataset, num_workers=0, seed=5)
    trainer = LocalClient(engine)
    delivered = 0
    with engine:
        for key in sorted(plan.batches):
            with trainer.get_batch(*key) as leased:
                delivered += leased.nbytes
        report = engine.dataplane_report()
    return {
        "num_batches": len(plan.batches),
        "bytes_delivered": delivered,
        "bytes_copied_per_batch": report["bytes_copied_per_batch"],
        "delivery_passes": report["delivery_passes"],
        "buffers_allocated": report["buffers_allocated"],
        "buffers_reused": report["buffers_reused"],
        "leases_outstanding": report["leases_outstanding"],
    }


def latency_experiment(tmp):
    dataset = make_dataset()
    plan = build_plan_window([make_config()], dataset, 0, K_EPOCHS, seed=5)
    keys = sorted(plan.batches)

    # Baseline: the status-quo trainer — one caller, demand assembly on
    # its own thread, no server in between.
    baseline = PreprocessingEngine(plan, dataset, num_workers=0, seed=5)
    single = []
    reference = {}
    with baseline:
        for key in keys:
            started = time.perf_counter()
            batch, _ = baseline.get_batch(*key)
            single.append(time.perf_counter() - started)
            reference[key] = batch
    gpu_step_s = 1.5 * sum(single) / len(single)

    # Concurrent: TRAINERS replicas each read the full window over the
    # wire from one drained engine (the data-parallel shape: every
    # replica reads the same batches), each paced by its GPU step.
    engine = PreprocessingEngine(plan, dataset, num_workers=2, seed=5)
    concurrent = []
    errors = []
    # Bench harness state, not engine-internal: lock-order sanitizing
    # would only add overhead to the measurement.
    lock = threading.Lock()  # sandlint: ignore[raw-lock]
    with engine:
        engine.drain()
        server = AsyncBatchServer(
            engine, unix_path=f"{tmp}/bench.sock", executor_workers=16
        )
        server.start_background()
        # One warm pass: first-touch leaf loads and pool growth should
        # not be billed to the steady-state latency distribution.
        with BatchSocketClient(server.address) as warm:
            for key in keys:
                batch, _ = warm.get_batch(*key)
                assert np.array_equal(batch, reference[key]), key

        def trainer(rank):
            samples = []
            try:
                with BatchSocketClient(server.address) as client:
                    for key in keys:
                        started = time.perf_counter()
                        client.get_batch_with_retry(*key)
                        samples.append(time.perf_counter() - started)
                        time.sleep(gpu_step_s)
            except Exception as exc:  # noqa: BLE001
                with lock:
                    errors.append(f"{rank}: {exc}")
                    return
            with lock:
                concurrent.extend(samples)

        threads = [
            threading.Thread(target=trainer, args=(rank,))
            for rank in range(TRAINERS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        assert errors == [], errors
        server.shutdown()
        report = engine.dataplane_report()

    return {
        "num_batches": len(keys),
        "trainers": TRAINERS,
        "requests": len(concurrent),
        "gpu_step_ms": round(gpu_step_s * 1e3, 4),
        "single_p50_ms": round(percentile(single, 50) * 1e3, 4),
        "single_p99_ms": round(percentile(single, 99) * 1e3, 4),
        "concurrent_p50_ms": round(percentile(concurrent, 50) * 1e3, 4),
        "concurrent_p99_ms": round(percentile(concurrent, 99) * 1e3, 4),
        "wall_s": round(wall, 4),
        "batches_per_s": round(len(concurrent) / max(wall, 1e-9), 2),
        "sends": report["sends"],
        "send_bytes": report["send_bytes"],
        "leases_outstanding": report["leases_outstanding"],
    }


def run_experiment():
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        return {
            "workload": {
                "num_videos": NUM_VIDEOS,
                "k_epochs": K_EPOCHS,
                "trainers": TRAINERS,
                "smoke": SMOKE,
            },
            "zero_copy": zero_copy_experiment(),
            "latency": latency_experiment(tmp),
        }


def test_perf_dataplane(benchmark, emit, results_dir):
    result = once(benchmark, run_experiment)
    zero = result["zero_copy"]
    lat = result["latency"]

    table = Table(
        "Async data plane: delivery copies and demand latency",
        ["metric", "single sync caller", f"{lat['trainers']} async trainers"],
    )
    table.add_row(
        "bytes copied per batch (in-process)", "-",
        zero["bytes_copied_per_batch"],
    )
    table.add_row("demand p50 (ms)", lat["single_p50_ms"], lat["concurrent_p50_ms"])
    table.add_row("demand p99 (ms)", lat["single_p99_ms"], lat["concurrent_p99_ms"])
    table.add_row("batches/s", "-", lat["batches_per_s"])
    table.add_row("leases outstanding after drain", "-", lat["leases_outstanding"])

    # Regression gates: the lease path moves zero bytes at the trainer
    # boundary, concurrent wire serving is no worse than the
    # single-caller sync path at p50 and p99, and the pool drains.
    assert zero["bytes_copied_per_batch"] == 0.0, zero
    assert zero["leases_outstanding"] == 0, zero
    assert lat["concurrent_p50_ms"] <= lat["single_p50_ms"], lat
    assert lat["concurrent_p99_ms"] <= lat["single_p99_ms"], lat
    assert lat["leases_outstanding"] == 0, lat

    if not SMOKE:
        (results_dir / "BENCH_dataplane.json").write_text(
            json.dumps(result, indent=2) + "\n"
        )
    emit("dataplane", table)
