#!/usr/bin/env python3
"""Distributed data-parallel training with remote storage (paper Fig 14).

Two nodes train one model; the dataset lives in remote (Filestore-like)
storage.  Each node runs its own SAND service over a remote-fetching
dataset wrapper.  SAND pulls each encoded video across the WAN once per
plan window and serves everything else from its local materialized
cache; the on-demand baseline re-fetches whenever it re-decodes.  The
example reports the measured network traffic of both — the paper's 3%
figure is this ratio's long-run limit.

Run:  python examples/distributed_remote_storage.py
"""

import numpy as np

from repro.baselines import OnDemandPipeline
from repro.core import SandService, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.train import run_ddp
from repro.train.ddp import RemoteFetchDataset

CONFIG = """
dataset:
  tag: "ddp"
  input_source: streaming
  video_dataset_path: /remote/filestore/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 6
    frame_stride: 2
  augmentation:
  - name: "aug"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [20, 28]
    - random_crop:
        size: [16, 16]
"""

EPOCHS = 4


class _NodeSource:
    """One node's batch source plus its remote-traffic meter."""

    def __init__(self, service_or_pipeline, dataset):
        self._source = service_or_pipeline
        self.dataset = dataset

    def get_batch(self, task, epoch, iteration):
        return self._source.get_batch(task, epoch, iteration)


def main() -> None:
    base = SyntheticDataset(
        DatasetSpec(num_videos=8, min_frames=40, max_frames=60, seed=13)
    )
    config = load_task_config(CONFIG)

    # SAND nodes: remote fetch once, local materialized cache after.
    sand_nodes = []
    services = []
    for node_idx in range(2):
        remote_view = RemoteFetchDataset(base, cache_locally=True)
        service = SandService(
            [config], remote_view, storage_budget_bytes=128 * 1024 * 1024,
            k_epochs=EPOCHS, num_workers=0, seed=21,
        )
        services.append(service)
        sand_nodes.append(_NodeSource(service, remote_view))
    iters = services[0].iterations_per_epoch("ddp")
    sand_result = run_ddp(sand_nodes, "ddp", iters, EPOCHS, seed=2)

    # Baseline nodes: on-demand decode re-fetches the encoded source.
    baseline_nodes = []
    for node_idx in range(2):
        remote_view = RemoteFetchDataset(base, cache_locally=False)
        pipeline = OnDemandPipeline(config, remote_view, seed=21)
        baseline_nodes.append(_NodeSource(pipeline, remote_view))
    baseline_result = run_ddp(baseline_nodes, "ddp", iters, EPOCHS, seed=2)

    for service in services:
        service.shutdown()

    sand_mb = sand_result.total_remote_bytes / 1e6
    base_mb = baseline_result.total_remote_bytes / 1e6
    print(f"SAND:     loss {sand_result.losses[-1]:.4f}, "
          f"remote traffic {sand_mb:.1f} MB across both nodes")
    print(f"baseline: loss {baseline_result.losses[-1]:.4f}, "
          f"remote traffic {base_mb:.1f} MB across both nodes")
    print(f"SAND moved {sand_mb / base_mb:.1%} of the baseline's bytes "
          f"over the WAN ({EPOCHS} epochs; ratio keeps falling with more epochs)")
    print("distributed remote-storage OK")


if __name__ == "__main__":
    main()
