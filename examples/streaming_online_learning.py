#!/usr/bin/env python3
"""Online learning over a streaming input source (paper S5.1).

The configuration API's ``input_source: streaming`` covers live-ingest
scenarios (the paper cites neural-enhanced live streaming): footage
keeps arriving while training runs.  SAND handles this at window
boundaries — each k-epoch plan is built from the dataset as it exists
then, so newly published videos join the next window automatically.

Run:  python examples/streaming_online_learning.py
"""

import numpy as np

from repro.core import SandService, load_task_config
from repro.datasets import DatasetSpec, StreamingDataset
from repro.train import Trainer

CONFIG = """
dataset:
  tag: "live"
  input_source: streaming
  video_dataset_path: /ingest/live
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
  - name: "aug"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [20, 24]
"""


def main() -> None:
    stream = StreamingDataset(
        DatasetSpec(num_videos=12, min_frames=30, max_frames=45, seed=19),
        initially_available=4,
    )
    config = load_task_config(CONFIG)
    service = SandService(
        [config], stream, storage_budget_bytes=64 * 1024 * 1024,
        k_epochs=1, num_workers=0, seed=3,
    )
    trainer = None
    try:
        for epoch in range(4):
            iters = service.iterations_per_epoch("live", epoch)
            if trainer is None:
                trainer = Trainer(service, "live", iters,
                                  num_classes=stream._backing.spec.num_classes,
                                  seed=1)
            trainer.iterations_per_epoch = iters
            losses = [trainer.step(epoch, i) for i in range(iters)]
            print(f"epoch {epoch}: {len(stream)} videos visible, "
                  f"{iters} iterations, mean loss {np.mean(losses):.4f}")
            # New footage lands between epochs.
            arrived = stream.publish(3)
            if arrived:
                print(f"  ingest: +{len(arrived)} videos "
                      f"({arrived[0]} ... {arrived[-1]})")
    finally:
        service.shutdown()
    print("streaming online-learning OK")


if __name__ == "__main__":
    main()
