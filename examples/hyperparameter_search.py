#!/usr/bin/env python3
"""Hyperparameter search over a shared SAND service (paper S7.1/S7.2).

Mirrors the paper's Ray Tune scenario: several trials — each a full
training of the same model with different optimizer hyperparameters —
run concurrently on an actor pool, all reading batches from ONE SAND
service.  Because every trial shares the coordinated materialization,
decode and augmentation work is done once per epoch regardless of how
many trials consume it.  The ASHA scheduler early-stops weak trials.

Run:  python examples/hyperparameter_search.py
"""

import numpy as np

from repro.core import SandClient, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.rayx import AshaScheduler, run_tune, sample_search_space
from repro.train import Trainer

CONFIG = """
dataset:
  tag: "search"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 6
    frame_stride: 2
  augmentation:
  - name: "aug"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [20, 28]
    - random_crop:
        size: [16, 16]
    - flip:
        flip_prob: 0.5
"""

MAX_EPOCHS = 6


def main() -> None:
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=12, min_frames=40, max_frames=60, seed=11)
    )
    config = load_task_config(CONFIG)
    client, service = SandClient.create(
        [config], dataset, storage_budget_bytes=128 * 1024 * 1024,
        k_epochs=MAX_EPOCHS, num_workers=1,
    )
    iters = service.iterations_per_epoch("search")

    # The paper's search space: optimizer hyperparameters.
    space = {
        "lr": (0.002, 0.3),            # log-uniform
        "weight_decay": (1e-6, 1e-3),  # log-uniform
        "hidden_dim": [16, 32, 64],
        "seed": [0],
    }
    configs = sample_search_space(space, num_trials=8, seed=3)

    def trainable(trial_config):
        trainer = Trainer(
            service,
            task="search",
            iterations_per_epoch=iters,
            num_classes=dataset.spec.num_classes,
            hidden_dim=trial_config["hidden_dim"],
            lr=trial_config["lr"],
            seed=trial_config["seed"],
        )
        yield from trainer.run_iterator(epochs=MAX_EPOCHS)

    scheduler = AshaScheduler(
        max_resource=MAX_EPOCHS, grace_period=1, reduction_factor=2
    )
    try:
        result = run_tune(trainable, configs, scheduler=scheduler, num_workers=4)
    finally:
        service.shutdown()

    print(f"trials: {len(result.trials)}, early-stopped: {result.early_stopped}, "
          f"total epochs trained: {result.total_resource} "
          f"(vs {len(configs) * MAX_EPOCHS} without ASHA)")
    best = result.best_trial
    print(f"best trial: lr={best.config['lr']:.4f} "
          f"wd={best.config['weight_decay']:.2e} hidden={best.config['hidden_dim']} "
          f"loss={best.best_metric:.4f}")
    print(f"shared cache held {len(service.store)} objects for all "
          f"{len(result.trials)} trials")
    print("hyperparameter search OK")


if __name__ == "__main__":
    main()
