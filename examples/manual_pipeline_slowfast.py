#!/usr/bin/env python3
"""The Table-3 foil: video preprocessing written the manual way.

This file implements, by hand, everything a SlowFast/HD-VILA-style
codebase implements for itself and everything SAND otherwise abstracts
away: container parsing and frame-accurate seeking, GOP-aware decoding,
temporal sampling policy, every augmentation op inline, a worker-thread
prefetch pipeline, and batch collation.  It produces batches of the same
shape as the SAND quickstart — in a few hundred lines instead of eight.

The region between the preprocessing markers is what the Table 3
benchmark counts.  Nothing here imports SAND's pipeline; only the codec's
byte-format *reader* primitives are reused (a real project would link
PyAV the same way).

Run:  python examples/manual_pipeline_slowfast.py
"""

import queue
import threading
import zlib

import numpy as np

from repro.codec.container import read_container
from repro.codec.model import FrameType
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.train import MLPClassifier, batch_features

# --- preprocessing ---


class ManualVideoReader:
    """Frame-accurate reader over the container format (PyAV-equivalent)."""

    def __init__(self, data):
        self.data = data
        self.metadata, self.records = read_container(data)

    def _decode_record(self, index, previous):
        record = self.records[index]
        payload = self.data[record.offset : record.offset + record.length]
        raw = zlib.decompress(payload)
        md = self.metadata
        frame = np.frombuffer(raw, dtype=np.uint8).reshape(md.height, md.width, 3)
        if record.frame_type is FrameType.P:
            if previous is None:
                raise ValueError(f"P frame {index} without reference")
            frame = previous + frame
        return frame.copy()

    def read_frames(self, indices):
        """Decode the requested frames, walking each GOP from its keyframe."""
        wanted = sorted(set(indices))
        out = {}
        gop = self.metadata.gop_size
        by_gop = {}
        for idx in wanted:
            by_gop.setdefault(idx // gop, []).append(idx)
        for g, members in sorted(by_gop.items()):
            previous = None
            for idx in range(g * gop, max(members) + 1):
                previous = self._decode_record(idx, previous)
                if idx in members:
                    out[idx] = previous
        return out


def select_clip_indices(rng, num_frames, frames_per_clip, stride):
    """Random temporal sampling: a strided clip placed uniformly."""
    span = (frames_per_clip - 1) * stride + 1
    if span <= num_frames:
        start = int(rng.integers(0, num_frames - span + 1))
        return [start + i * stride for i in range(frames_per_clip)]
    start = int(rng.integers(0, num_frames))
    return [(start + i * stride) % num_frames for i in range(frames_per_clip)]


def resize_bilinear(clip, out_h, out_w):
    """Bilinear resize, implemented from scratch (OpenCV-equivalent)."""
    t, h, w, c = clip.shape
    if (h, w) == (out_h, out_w):
        return clip.copy()
    ys = np.clip((np.arange(out_h) + 0.5) * (h / out_h) - 0.5, 0, h - 1)
    xs = np.clip((np.arange(out_w) + 0.5) * (w / out_w) - 0.5, 0, w - 1)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[None, :, None, None]
    wx = (xs - x0)[None, None, :, None]
    work = clip.astype(np.float32)
    top = work[:, y0][:, :, x0] * (1 - wx) + work[:, y0][:, :, x1] * wx
    bot = work[:, y1][:, :, x0] * (1 - wx) + work[:, y1][:, :, x1] * wx
    out = top * (1 - wy) + bot * wy
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def random_crop(rng, clip, crop_h, crop_w):
    t, h, w, c = clip.shape
    if crop_h > h or crop_w > w:
        raise ValueError(f"crop {crop_h}x{crop_w} larger than clip {h}x{w}")
    top = int(rng.integers(0, h - crop_h + 1))
    left = int(rng.integers(0, w - crop_w + 1))
    return clip[:, top : top + crop_h, left : left + crop_w].copy()


def random_flip(rng, clip, prob):
    if rng.random() < prob:
        return clip[:, :, ::-1].copy()
    return clip


def color_jitter(rng, clip, brightness):
    factor = float(rng.uniform(1.0 - brightness, 1.0 + brightness))
    work = clip.astype(np.float32) * factor
    return np.clip(np.rint(work), 0, 255).astype(np.uint8)


class ManualPreprocessor:
    """One sample: decode, select, augment — the per-item pipeline."""

    def __init__(self, dataset, frames_per_clip, stride, resize_hw, crop_hw,
                 flip_prob, brightness, seed):
        self.dataset = dataset
        self.frames_per_clip = frames_per_clip
        self.stride = stride
        self.resize_hw = resize_hw
        self.crop_hw = crop_hw
        self.flip_prob = flip_prob
        self.brightness = brightness
        self.seed = seed
        self._readers = {}
        self._lock = threading.Lock()

    def _reader(self, video_id):
        with self._lock:
            if video_id not in self._readers:
                self._readers[video_id] = ManualVideoReader(
                    self.dataset.get_bytes(video_id)
                )
            return self._readers[video_id]

    def build_sample(self, video_id, epoch, slot):
        rng = np.random.default_rng(
            (hash((self.seed, video_id, epoch, slot)) & 0x7FFFFFFF)
        )
        reader = self._reader(video_id)
        num_frames = reader.metadata.num_frames
        indices = select_clip_indices(
            rng, num_frames, self.frames_per_clip, self.stride
        )
        frames = reader.read_frames(indices)
        clip = np.stack([frames[i] for i in indices], axis=0)
        clip = resize_bilinear(clip, *self.resize_hw)
        clip = random_crop(rng, clip, *self.crop_hw)
        clip = random_flip(rng, clip, self.flip_prob)
        clip = color_jitter(rng, clip, self.brightness)
        timestamps = [i / reader.metadata.fps for i in indices]
        return clip, timestamps


class ManualLoader:
    """Worker-thread prefetch loader with collation (DataLoader-equivalent)."""

    def __init__(self, preprocessor, dataset, videos_per_batch, num_workers,
                 prefetch, seed):
        self.pre = preprocessor
        self.dataset = dataset
        self.videos_per_batch = videos_per_batch
        self.num_workers = num_workers
        self.prefetch = prefetch
        self.seed = seed

    def epoch_order(self, epoch):
        rng = np.random.default_rng((self.seed, epoch))
        ids = list(self.dataset.video_ids)
        return [ids[i] for i in rng.permutation(len(ids))]

    def iterations_per_epoch(self):
        return len(self.dataset.video_ids) // self.videos_per_batch

    def iter_epoch(self, epoch):
        order = self.epoch_order(epoch)
        batches = [
            order[i * self.videos_per_batch : (i + 1) * self.videos_per_batch]
            for i in range(self.iterations_per_epoch())
        ]
        jobs = queue.Queue()
        results = {}
        results_lock = threading.Lock()
        done = threading.Event()

        def worker():
            while not done.is_set():
                try:
                    key, video_id, slot = jobs.get(timeout=0.05)
                except queue.Empty:
                    continue
                sample = self.pre.build_sample(video_id, epoch, slot)
                with results_lock:
                    results[key] = sample
                jobs.task_done()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()
        try:
            for it, batch_videos in enumerate(batches):
                for slot, video_id in enumerate(batch_videos):
                    jobs.put(((it, slot), video_id, slot))
            for it, batch_videos in enumerate(batches):
                samples, stamps, labels = [], [], []
                for slot, video_id in enumerate(batch_videos):
                    while True:
                        with results_lock:
                            if (it, slot) in results:
                                clip, ts = results.pop((it, slot))
                                break
                        threading.Event().wait(0.002)
                    samples.append(clip)
                    stamps.append(ts)
                    labels.append(self.dataset.label(video_id))
                yield np.stack(samples, axis=0), labels, stamps
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=2)


# --- end preprocessing ---


def main() -> None:
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=12, min_frames=40, max_frames=70, seed=7)
    )
    pre = ManualPreprocessor(
        dataset,
        frames_per_clip=8,
        stride=2,
        resize_hw=(24, 32),
        crop_hw=(16, 16),
        flip_prob=0.5,
        brightness=0.2,
        seed=0,
    )
    loader = ManualLoader(
        pre, dataset, videos_per_batch=4, num_workers=2, prefetch=2, seed=0
    )
    model = None
    for epoch in range(2):
        losses = []
        for batch, labels, _ in loader.iter_epoch(epoch):
            feats = batch_features(batch)
            if model is None:
                model = MLPClassifier(feats.shape[1], 32, dataset.spec.num_classes)
            losses.append(model.train_step(feats, np.asarray(labels)))
        print(f"epoch {epoch}: mean loss {np.mean(losses):.4f} "
              f"(batch shape {batch.shape})")
    print("manual pipeline OK")


if __name__ == "__main__":
    main()
