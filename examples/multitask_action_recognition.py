#!/usr/bin/env python3
"""Multiple heterogeneous tasks sharing one dataset (paper S7.2, Fig 13/16).

Two action-recognition tasks with different clip geometries (a
SlowFast-like and a MAE-like configuration) train concurrently against
one SAND service.  Coordinated randomization makes their frame
selections and crop windows overlap, so the concrete plan merges nodes
across the tasks — the example prints the measured reduction in decode
and augmentation operations versus independent execution.

Run:  python examples/multitask_action_recognition.py
"""

import numpy as np

from repro.core import SandClient, build_plan_window, load_task_configs
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.train import Trainer

SLOWFAST_LIKE = """
dataset:
  tag: "slowfast"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 8
    frame_stride: 2
  augmentation:
  - name: "aug"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [24, 32]
    - random_crop:
        size: [16, 16]
    - flip:
        flip_prob: 0.5
"""

MAE_LIKE = """
dataset:
  tag: "mae"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 4
    frame_stride: 4
    samples_per_video: 2
  augmentation:
  - name: "aug"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [24, 32]
    - random_crop:
        size: [16, 16]
    - flip:
        flip_prob: 0.5
"""


def main() -> None:
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=12, min_frames=50, max_frames=80, seed=5)
    )
    configs = load_task_configs([SLOWFAST_LIKE, MAE_LIKE])

    # Measure the planning benefit first (what Fig 16 reports).
    merged = build_plan_window(configs, dataset, 0, 2, seed=1, coordinated=True)
    independent = build_plan_window(configs, dataset, 0, 2, seed=1, coordinated=False)
    c, u = merged.operation_counts(), independent.operation_counts()
    for op in ("decode", "resize", "random_crop", "flip"):
        print(f"{op:12s}: {u[op]:5d} ops independent -> {c[op]:5d} merged "
              f"({1 - c[op] / u[op]:.1%} fewer)")

    # Then actually train both tasks against one service.
    client, service = SandClient.create(
        configs, dataset, storage_budget_bytes=128 * 1024 * 1024,
        k_epochs=2, num_workers=1,
    )
    try:
        for tag in ("slowfast", "mae"):
            iters = service.iterations_per_epoch(tag)
            trainer = Trainer(
                service, task=tag, iterations_per_epoch=iters,
                num_classes=dataset.spec.num_classes, seed=1,
            )
            result = trainer.run(epochs=2)
            print(f"task {tag}: final loss {result.final_loss:.4f} "
                  f"({result.stats.iterations_completed} iterations)")
    finally:
        service.shutdown()
    print("multitask OK")


if __name__ == "__main__":
    main()
