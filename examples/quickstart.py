#!/usr/bin/env python3
"""Quickstart: the paper's Figure 6 workflow end to end.

1. Describe the preprocessing pipeline in a single YAML config (Fig 9).
2. Start the SAND service over a (synthetic) video dataset and mount it.
3. Read training batches through POSIX calls on view paths (Tables 1-2).
4. Train a small classifier for a couple of epochs.

Run:  python examples/quickstart.py
"""

import json

import numpy as np

from repro.core import SandClient, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset
from repro.train import MLPClassifier, batch_features

CONFIG = """
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 8
    frame_stride: 2
    samples_per_video: 1
  augmentation:
  - name: "augment_resize"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["augmented_frame_0"]
    config:
    - resize:
        shape: [24, 32]
        interpolation: ["bilinear"]
    - random_crop:
        size: [16, 16]
    - flip:
        flip_prob: 0.5
"""


class SandDataset:
    """A PyTorch-style dataset over SAND views (the Fig 6 pattern)."""

    def __init__(self, client: SandClient, task: str, epoch: int):
        self.client = client
        self.task = task
        self.epoch = epoch

    def __getitem__(self, iteration: int):
        # --- preprocessing ---
        path = f"/{self.task}/{self.epoch}/{iteration}/view"
        fd = self.client.open(path)
        blob = self.client.read(fd)
        timestamps = json.loads(self.client.getxattr(path, "timestamps"))
        labels = json.loads(self.client.getxattr(path, "labels"))
        self.client.close(fd)
        from repro.storage.blobs import decode_array
        batch = decode_array(blob)
        # --- end preprocessing ---
        return batch, labels, timestamps


def main() -> None:
    dataset = SyntheticDataset(
        DatasetSpec(num_videos=12, min_frames=40, max_frames=70, seed=7)
    )
    config = load_task_config(CONFIG)
    client, service = SandClient.create(
        [config], dataset, storage_budget_bytes=64 * 1024 * 1024, k_epochs=2,
        num_workers=1,
    )
    ctrl = client.begin_task("train")
    try:
        iters = service.iterations_per_epoch("train")
        model = None
        for epoch in range(2):
            ds = SandDataset(client, "train", epoch)
            epoch_losses = []
            for iteration in range(iters):
                batch, labels, _ = ds[iteration]
                feats = batch_features(batch)
                if model is None:
                    model = MLPClassifier(feats.shape[1], 32, dataset.spec.num_classes)
                loss = model.train_step(feats, np.asarray(labels))
                epoch_losses.append(loss)
            print(f"epoch {epoch}: mean loss {np.mean(epoch_losses):.4f} "
                  f"({iters} iterations, batch shape {batch.shape})")
        print(f"cache: {service.store.used_bytes / 1e6:.1f} MB used, "
              f"{len(service.store)} objects")
    finally:
        client.finish_task(ctrl)
        service.shutdown()
    print("quickstart OK")


if __name__ == "__main__":
    main()
