#!/usr/bin/env python3
"""Custom augmentation ops and out-of-process execution (paper S5.5).

Two extension paths:

1. **In-process custom op** — subclass ``AugmentOp``, register it, and
   reference it from the YAML config like any built-in.
2. **RPC op** — run an op in a separate worker process via SAND's RPC
   service, so external-library transforms cannot conflict with the
   service internals.

Run:  python examples/custom_augmentation_rpc.py
"""

import numpy as np

from repro.augment import AugmentOp, OpRegistry, default_registry
from repro.augment.rpc import RpcAugmentService
from repro.core import SandClient, load_task_config
from repro.datasets import DatasetSpec, SyntheticDataset


class Posterize(AugmentOp):
    """Quantize colors to ``levels`` buckets — a custom deterministic op."""

    name = "posterize"
    deterministic = True
    cost_weight = 0.3

    def validate_config(self) -> None:
        levels = int(self.config.get("levels", 4))
        if not 2 <= levels <= 128:
            raise ValueError(f"levels must be in [2, 128], got {levels}")

    def apply(self, clip: np.ndarray, params) -> np.ndarray:
        levels = int(self.config.get("levels", 4))
        step = 256 // levels
        return (clip // step) * step


CONFIG = """
dataset:
  tag: "custom"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
  augmentation:
  - name: "aug"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [20, 24]
    - posterize:
        levels: 8
"""


def main() -> None:
    # Path 1: register the custom op on a private registry and use it
    # from YAML exactly like a built-in.
    registry = OpRegistry()
    for name in default_registry().known():
        registry.register(type(default_registry().create(name, _minimal(name))))
    registry.register(Posterize)

    dataset = SyntheticDataset(
        DatasetSpec(num_videos=4, min_frames=30, max_frames=40, seed=17)
    )
    config = load_task_config(CONFIG, registry=registry)
    client, service = SandClient.create(
        [config], dataset, storage_budget_bytes=32 * 1024 * 1024,
        k_epochs=1, num_workers=0, registry=registry,
    )
    try:
        batch, _ = client.read_batch("custom", 0, 0)
        unique_per_channel = len(np.unique(batch))
        print(f"batch {batch.shape}: {unique_per_channel} distinct pixel values "
              f"(posterized to 8 levels => expect <= 8 x rounding spread)")
        assert unique_per_channel <= 32
    finally:
        service.shutdown()

    # Path 2: the same op applied in a separate worker process over RPC.
    clip = dataset.source(dataset.video_ids[0]).frame(0)[np.newaxis]
    with RpcAugmentService() as rpc:
        remote_out = rpc.apply(
            "examples.custom_augmentation_rpc:Posterize", {"levels": 8}, clip, {}
        )
    local_out = Posterize({"levels": 8}).apply(clip, {})
    assert np.array_equal(remote_out, local_out)
    print("RPC worker produced bit-identical output to the in-process op")
    print("custom augmentation OK")


def _minimal(name: str) -> dict:
    """Minimal valid config per built-in op (for re-registration)."""
    return {
        "resize": {"shape": [8, 8]},
        "center_crop": {"size": [4, 4]},
        "random_crop": {"size": [4, 4]},
    }.get(name, {})


if __name__ == "__main__":
    main()
