"""Aggregate every committed ``BENCH_*.json`` into one trajectory table.

Each perf benchmark persists its headline numbers to
``benchmark_results/BENCH_<name>.json``.  This tool reads them all and
renders a single summary table — the repo's performance trajectory at a
glance — so the CI perf job (and a human skimming a PR) sees every
standing baseline in one place instead of cat'ing files one by one.

Usage:
    PYTHONPATH=src python tools/bench_summary.py [results_dir]

Exit status is non-zero if the results directory holds no BENCH files
(a perf job that produced nothing is a broken perf job).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

from repro.metrics import Table

# The headline metrics per benchmark, as dotted paths into its JSON.
# Unknown benchmarks (and paths missing after a schema change) fall back
# to the flattened numeric leaves, so the tool never goes stale-silent.
HIGHLIGHTS: Dict[str, List[str]] = {
    "augment_fusion": [
        "fused.passes_per_clip",
        "unfused.passes_per_clip",
        "pass_reduction_x",
        "bytes_copied_reduction_x",
    ],
    "codec_signals": [
        "near_duplicate_reuse.low_motion_fraction",
        "near_duplicate_reuse.cache_only_reduction_x",
        "near_duplicate_reuse.signal_reduction_x",
    ],
    "dataplane": [
        "zero_copy.bytes_copied_per_batch",
        "zero_copy.leases_outstanding",
        "latency.concurrent_p50_ms",
        "latency.concurrent_p99_ms",
        "latency.batches_per_s",
    ],
    "decode_reuse": [
        "baseline_stateless.amplification",
        "reuse_incremental.amplification",
        "decode_reduction_x",
        "bytes_reduction_x",
    ],
    "prefetch": [
        "stall.stall_reduction_x",
        "fs_ops.fs_ops_reduction_x",
    ],
    "shard_service": [
        "workload.shards",
        "workload.tenants",
        "workload.trainers",
        "fleet.fleet.latency_s.p50",
        "fleet.fleet.latency_s.p99",
        "fleet.fleet.throughput_batches_per_s",
        "fleet.routing.dedup_hits",
        "fleet.routing.failovers",
    ],
}

MAX_FALLBACK_ROWS = 8


def flatten(payload: Any, prefix: str = "") -> Iterator[Tuple[str, Any]]:
    """Depth-first numeric/bool leaves of a JSON document, dotted paths."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from flatten(value, f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(payload, bool) or isinstance(payload, (int, float)):
        yield prefix, payload


def lookup(payload: Any, path: str) -> Any:
    for part in path.split("."):
        if not isinstance(payload, dict) or part not in payload:
            return None
        payload = payload[part]
    return payload


def fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def rows_for(name: str, payload: Any) -> List[Tuple[str, str]]:
    rows: List[Tuple[str, str]] = []
    for path in HIGHLIGHTS.get(name, []):
        value = lookup(payload, path)
        if value is not None:
            rows.append((path, fmt(value)))
    if not rows:  # unknown benchmark or schema drift: show its leaves
        for path, value in list(flatten(payload))[:MAX_FALLBACK_ROWS]:
            rows.append((path, fmt(value)))
    return rows


def main(argv: List[str]) -> int:
    results_dir = Path(argv[1]) if len(argv) > 1 else Path("benchmark_results")
    files = sorted(results_dir.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json under {results_dir}", file=sys.stderr)
        return 1
    table = Table(
        f"Performance trajectory ({len(files)} standing benchmarks)",
        ["benchmark", "metric", "value"],
    )
    for path in files:
        name = path.stem[len("BENCH_"):]
        payload = json.loads(path.read_text())
        for metric, value in rows_for(name, payload):
            table.add_row(name, metric, value)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
