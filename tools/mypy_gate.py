"""Two-tier mypy gate.

Tier 1 (strict): ``repro.analysis`` and ``repro.augment.fusion`` must be
``mypy --strict`` clean (generics over ``Any`` are allowed: numpy's
``ndarray`` is generic and the repo annotates it bare).  Any error fails.

Tier 2 (ratchet): the rest of the tree is checked with default settings
against ``mypy-baseline.txt``, a list of *grandfathered file paths*.
Errors in listed files are tolerated; errors anywhere else — including
every file added after the baseline was cut — fail.  Delete lines from
the baseline as files are cleaned up; never add lines for new files.

Usage:
    python tools/mypy_gate.py             # run both tiers
    python tools/mypy_gate.py --update-baseline
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Set, Tuple

REPO = Path(__file__).resolve().parents[1]
BASELINE = REPO / "mypy-baseline.txt"

STRICT_ARGS = [
    "--strict",
    "--allow-any-generics",
    "--follow-imports=silent",
    "-p",
    "repro.analysis",
    "-m",
    "repro.augment.fusion",
    "-m",
    "repro.codec.signals",
    "-m",
    "repro.core.prefetch",
    "-m",
    "repro.storage.packs",
    "-m",
    "repro.core.wire",
    "-m",
    "repro.core.dataplane",
]

TREE_ARGS = ["--follow-imports=normal", "-p", "repro"]

_ERROR_LINE = re.compile(r"^(?P<path>[^:\n]+\.py):\d+(?::\d+)?: error: ")


def run_mypy(args: List[str]) -> Tuple[int, str]:
    env = dict(os.environ, MYPYPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )
    return proc.returncode, proc.stdout + proc.stderr


def error_paths(output: str) -> Set[str]:
    found: Set[str] = set()
    for line in output.splitlines():
        match = _ERROR_LINE.match(line.strip())
        if match:
            found.add(match.group("path").replace(os.sep, "/"))
    return found


def load_baseline() -> Set[str]:
    if not BASELINE.exists():
        return set()
    entries: Set[str] = set()
    for raw in BASELINE.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def strict_tier() -> int:
    code, output = run_mypy(STRICT_ARGS)
    modules = " / ".join(
        STRICT_ARGS[i + 1] for i, a in enumerate(STRICT_ARGS) if a in ("-p", "-m")
    )
    if code != 0:
        print(f"mypy --strict failed for {modules}:")
        print(output)
        return 1
    print(f"strict tier clean: {modules}")
    return 0


def ratchet_tier(update: bool) -> int:
    code, output = run_mypy(TREE_ARGS)
    failing = error_paths(output)
    if code != 0 and not failing:
        # mypy itself blew up (bad config, crash): surface that verbatim.
        print(output)
        return 1
    if update:
        body = "\n".join(sorted(failing))
        BASELINE.write_text(
            "# Files grandfathered by the mypy ratchet (tools/mypy_gate.py).\n"
            "# Remove lines as files are cleaned; never add new ones.\n"
            + (body + "\n" if body else "")
        )
        print(f"baseline updated: {len(failing)} file(s)")
        return 0
    baseline = load_baseline()
    fresh = sorted(failing - baseline)
    if fresh:
        print("mypy errors outside the baseline (new or newly-broken files):")
        for line in output.splitlines():
            match = _ERROR_LINE.match(line.strip())
            if match and match.group("path").replace(os.sep, "/") in fresh:
                print(f"  {line}")
        return 1
    fixed = sorted(baseline - failing)
    if fixed:
        print(f"note: {len(fixed)} baseline file(s) are now clean; trim the baseline:")
        for path in fixed:
            print(f"  {path}")
    print(f"ratchet tier clean ({len(failing)} grandfathered file(s) with errors)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite mypy-baseline.txt from the current tree",
    )
    options = parser.parse_args(argv)
    strict = strict_tier()
    ratchet = ratchet_tier(options.update_baseline)
    return strict or ratchet


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
